//! The request-driven traffic experiment runner.
//!
//! [`Experiment::run_traffic`] replaces the tick-scripted workload side
//! of [`Experiment::run`] with the discrete-event engine from the
//! [`traffic`] crate: seeded request arrivals on a scenario's offered-
//! load curve drive allocation, GC pressure, JIT warm-up and page
//! dirtying in the guest JVMs, while fleet-churn events (rolling-deploy
//! restarts, autoscale add/remove) reshape the fleet mid-run. The KSM
//! scanner runs exactly as in the tick model — the experiment measures
//! how stable its sharing stays under realistic traffic.
//!
//! # Parallel plan → commit (DESIGN.md §14)
//!
//! Each drained event batch is split into **guest-local** work
//! (request serving and start-up ticks for guests untouched by churn
//! this batch) and **host-global** work (restarts, adds, removes,
//! phase markers). Guest-local events only *write* host memory — every
//! read they need (translation, gpfn allocation, THP eligibility) is
//! guest-private — so the plan phase runs them on [`par::map_sharded`]
//! against disjoint per-guest shards, capturing host-side effects into
//! per-shard [`MemTape`]s. The commit phase then walks the batch in
//! its original `(due_tick, seq)` order, applying host-global events
//! live and replaying each guest's next tape segment in place of its
//! local events. Frame ids, rmap contents and the trace stream are
//! byte-identical at any `threads` setting.
//!
//! Per-guest serving capacity is snapshotted once per batch, *before*
//! any event applies (see [`TrafficWorld::capacity_snapshot`]), so the
//! served/shed split of every parallel request batch is known at
//! classification time and thread-count invariant by construction.
//!
//! Costs follow the engine's invariant: a guest only pays when an event
//! addresses it. Kernel background churn is batched — each guest
//! remembers the last tick it was advanced to and catches up in one
//! [`tick_many`](oskernel::GuestOs::tick_many) call at its next event —
//! so a fleet that is mostly idle costs O(pending events), not
//! O(guests), per tick. Reports are byte-identical at any `threads`
//! setting and across platforms (see DESIGN.md §11).

use crate::run::{boot_world, cold_estimate_mib, mix, JVM_VERSION};
use crate::{Error, Experiment, ExperimentConfig};
use analysis::GuestView;
use cds::SharedClassCache;
use hypervisor::{KvmHost, PagingModel};
use jvm::{JavaVm, JvmConfig, RequestCost};
use ksm::{KsmScanner, KsmStats};
use mem::Tick;
use obs::EventKind;
use oskernel::{GuestOs, Pid};
use paging::{MemSink, MemTape};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;
use traffic::{Scenario, TrafficEngine, TrafficSpec};
use workloads::{Workload, WorkloadEvent};

/// Seconds between sharing samples in a traffic run.
const SAMPLE_SECONDS: u64 = 10;

/// One sharing/throughput sample of a traffic run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficSample {
    /// Simulated seconds since the start of the run.
    pub seconds: f64,
    /// Guests running a JVM at the sample point.
    pub active_guests: usize,
    /// Requests offered fleet-wide since the previous sample.
    pub offered: u64,
    /// Requests served fleet-wide since the previous sample.
    pub served: u64,
    /// `pages_sharing` at the sample point (freshly recounted).
    pub pages_sharing: u64,
}

/// What a traffic run reports: throughput under over-commit versus the
/// offered load, fleet churn counts, and how stable KSM's sharing stayed
/// while traffic reshaped guest memory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficReport {
    /// Scenario name ([`Scenario::name`]).
    pub scenario: String,
    /// Initial fleet size.
    pub guests: usize,
    /// Run length, seconds.
    pub duration_seconds: u64,
    /// Requests offered fleet-wide over the whole run.
    pub offered: u64,
    /// Requests served fleet-wide over the whole run.
    pub served: u64,
    /// Requests shed (offered while over capacity or with no JVM).
    pub dropped: u64,
    /// Rolling-deploy JVM restarts performed.
    pub restarts: u64,
    /// Autoscale guest additions performed.
    pub scale_ups: u64,
    /// Autoscale guest drains performed.
    pub scale_downs: u64,
    /// Mean served throughput, requests/sec over the run.
    pub throughput_rps: f64,
    /// Sharing stability over the second half of the run:
    /// `1 − mean |Δ pages_sharing| / mean pages_sharing` across samples,
    /// clamped to `[0, 1]`. `1.0` means sharing held perfectly steady
    /// under the traffic; rolling deploys and flash crowds push it down.
    pub sharing_stability: f64,
    /// Final host-resident memory, MiB.
    pub resident_mib: f64,
    /// Final KSM counters (freshly recounted).
    pub ksm: KsmStats,
    /// Host memory mapped through 2 MiB huge frames at the end of the
    /// run, MiB. Zero under the default `ThpPolicy::Never` — and then
    /// omitted from [`render`](Self::render), keeping the non-THP golden
    /// byte-identical.
    pub huge_mib: f64,
    /// Per-interval samples, every [`SAMPLE_SECONDS`].
    pub samples: Vec<TrafficSample>,
    /// Per-guest request tallies over the whole run, indexed by guest
    /// slot. Sums across guests equal the fleet-wide
    /// `offered`/`served`/`dropped` fields. Not rendered (the golden
    /// text predates it); exported through
    /// [`record_metrics`](Self::record_metrics) and the daemon.
    pub per_guest: Vec<GuestTraffic>,
}

/// One guest's request tallies over a traffic run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuestTraffic {
    /// Requests routed to this guest.
    pub offered: u64,
    /// Requests this guest served within capacity.
    pub served: u64,
    /// Requests shed (over capacity, or routed while drained).
    pub dropped: u64,
}

/// Wall-clock nanoseconds a traffic run spent in each step phase,
/// accumulated across every tick. Wall-clock only — never part of
/// [`TrafficReport`] or any golden; exported as `Wall`-class metrics by
/// the daemon and pinned (as a speedup projection) by the
/// `fleet_traffic` bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficWall {
    /// Draining due events out of the engine's sharded queue.
    pub drain_ns: u64,
    /// Classifying the batch and running guest-local work on the
    /// worker pool (the only phase that parallelises).
    pub plan_ns: u64,
    /// Serial commit: host-global events plus tape replay.
    pub commit_ns: u64,
    /// khugepaged, the KSM scanner and sharing samples.
    pub scan_ns: u64,
    /// The pool-parallel share of [`scan_ns`](Self::scan_ns): the KSM
    /// scanner's classify + resolve phases (its own wake accounting).
    /// The remainder of `scan_ns` — scanner plan/commit, khugepaged and
    /// sampling — runs serially.
    pub scan_parallel_ns: u64,
}

impl TrafficWall {
    /// Total step time across all phases.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.drain_ns + self.plan_ns + self.commit_ns + self.scan_ns
    }

    /// The serially-executed share of [`total_ns`](Self::total_ns):
    /// everything except the plan phase and the scanner's parallel
    /// phases.
    #[must_use]
    pub fn serial_ns(&self) -> u64 {
        self.drain_ns + self.commit_ns + self.scan_ns - self.scan_parallel_ns.min(self.scan_ns)
    }
}

impl TrafficReport {
    /// Renders the report as the deterministic text table pinned by
    /// `tests/golden/traffic.txt`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "traffic {} | {} guests | {} s",
            self.scenario, self.guests, self.duration_seconds
        );
        let _ = writeln!(
            out,
            "offered {} | served {} | shed {} | throughput {:.2} r/s",
            self.offered, self.served, self.dropped, self.throughput_rps
        );
        let _ = writeln!(
            out,
            "restarts {} | scale-ups {} | scale-downs {}",
            self.restarts, self.scale_ups, self.scale_downs
        );
        let _ = writeln!(
            out,
            "sharing stability {:.3} | final pages_sharing {} | resident {:.1} MiB",
            self.sharing_stability, self.ksm.pages_sharing, self.resident_mib
        );
        if self.huge_mib > 0.0 {
            let _ = writeln!(
                out,
                "thp huge {:.1} MiB | thp splits {}",
                self.huge_mib, self.ksm.thp_splits
            );
        }
        let _ = writeln!(
            out,
            "{:>8} {:>7} {:>8} {:>7} {:>8}",
            "seconds", "active", "offered", "served", "sharing"
        );
        for s in &self.samples {
            let _ = writeln!(
                out,
                "{:>8.0} {:>7} {:>8} {:>7} {:>8}",
                s.seconds, s.active_guests, s.offered, s.served, s.pages_sharing
            );
        }
        out
    }

    /// Exports the run's deterministic traffic counters into `reg`:
    /// fleet-wide and per-guest offered/served/shed, churn counts, and
    /// the sharing-stability gauge. All series are simulated-state and
    /// byte-identical at any thread count.
    pub fn record_metrics(&self, reg: &mut obs::MetricsRegistry) {
        reg.counter(
            "traffic_offered_total",
            "Requests offered fleet-wide.",
            &[],
            self.offered,
        );
        reg.counter(
            "traffic_served_total",
            "Requests served fleet-wide.",
            &[],
            self.served,
        );
        reg.counter(
            "traffic_shed_total",
            "Requests shed fleet-wide (over capacity or drained).",
            &[],
            self.dropped,
        );
        reg.counter(
            "traffic_restarts_total",
            "Rolling-deploy JVM restarts performed.",
            &[],
            self.restarts,
        );
        reg.counter(
            "traffic_scale_ups_total",
            "Autoscale guest additions performed.",
            &[],
            self.scale_ups,
        );
        reg.counter(
            "traffic_scale_downs_total",
            "Autoscale guest drains performed.",
            &[],
            self.scale_downs,
        );
        reg.gauge(
            "traffic_sharing_stability",
            "1 - mean |delta pages_sharing| / mean pages_sharing over the run's second half.",
            &[],
            self.sharing_stability,
        );
        const GUEST_HELP: &str = "Per-guest request tallies over the run.";
        for (i, g) in self.per_guest.iter().enumerate() {
            let idx = i.to_string();
            reg.counter(
                "traffic_guest_offered_total",
                GUEST_HELP,
                &[("guest", &idx)],
                g.offered,
            );
            reg.counter(
                "traffic_guest_served_total",
                GUEST_HELP,
                &[("guest", &idx)],
                g.served,
            );
            reg.counter(
                "traffic_guest_shed_total",
                GUEST_HELP,
                &[("guest", &idx)],
                g.dropped,
            );
        }
    }
}

/// Mutable per-guest traffic state the event sink maintains.
pub(crate) struct GuestSlot {
    /// The JVM currently running in this guest, if any.
    pub(crate) java: Option<JavaVm>,
    /// JVM launch generation (bumps the process salt on restart).
    generation: u64,
    /// Last tick this guest's kernel background churn was advanced to.
    churned_to: u64,
    /// Per-request memory cost for this guest's workload.
    cost: RequestCost,
    /// The running JVM's pid, if any — maintained alongside `java` so
    /// attribution snapshots can borrow it without allocating.
    pids: Vec<Pid>,
}

/// Guest-local work the plan phase can run off the main thread. The
/// served/shed split of a request batch is precomputed at
/// classification time from the batch-start capacity snapshot, so the
/// same numbers flow into the report, the trace stream and the JVM
/// regardless of which path executes the event.
#[derive(Debug, Clone, Copy)]
enum LocalKind {
    /// One engine start-up tick for the guest's JVM.
    Startup,
    /// A request batch, already split against the capacity snapshot.
    Requests {
        /// Requests routed to the guest this event.
        offered: u64,
        /// Requests within the snapshot capacity (0 while drained).
        served: u64,
        /// Requests shed.
        dropped: u64,
    },
}

/// One batch entry, in original `(due_tick, seq)` order.
enum BatchItem {
    /// Host-global work: applied live, serially, at commit.
    Serial(Tick, WorkloadEvent),
    /// Guest-local work: planned on the pool, replayed at commit.
    Local {
        at: Tick,
        guest: usize,
        kind: LocalKind,
    },
}

/// One guest's share of a batch during the parallel plan phase: the
/// guest's own simulator state plus a private tape for host effects.
struct PlanShard<'a> {
    guest: usize,
    events: Vec<(Tick, LocalKind)>,
    os: &'a mut GuestOs,
    slot: &'a mut GuestSlot,
    tape: MemTape,
    seg_ends: Vec<usize>,
}

/// A planned guest's tape, detached from the guest borrows so the
/// commit phase can mutate the host again. `seg_ends[i]` brackets the
/// ops recorded by the guest's `i`-th local event.
struct PlannedTape {
    guest: usize,
    tape: MemTape,
    seg_ends: Vec<usize>,
}

/// A booted traffic world that can be advanced one tick at a time.
///
/// [`Experiment::run_traffic`] is a plain loop over [`step`](Self::step)
/// followed by [`finish`](Self::finish); the monitoring daemon drives
/// the same steps but pauses between them to publish state, so the two
/// paths are identical by construction.
pub(crate) struct TrafficWorld {
    config: ExperimentConfig,
    cache_images: HashMap<u64, Vec<u8>>,
    pub(crate) host: KvmHost,
    pub(crate) slots: Vec<GuestSlot>,
    cold_per_guest: Vec<f64>,
    audit_enabled: bool,
    pub(crate) scanner: KsmScanner,
    engine: TrafficEngine,
    healthy_rps: f64,
    warmup_end: Tick,
    pub(crate) end: Tick,
    sample_ticks: u64,
    switched: bool,
    pub(crate) wall: TrafficWall,
    pub(crate) report: TrafficReport,
    window_offered: u64,
    window_served: u64,
}

impl TrafficWorld {
    /// Validates `config` and boots the fleet under `scenario`.
    pub(crate) fn new(
        config: &ExperimentConfig,
        scenario: &Scenario,
    ) -> Result<TrafficWorld, Error> {
        config.validate()?;
        let healthy_rps = config.guests[0].benchmark.drive.healthy_rps();
        let startup_seconds = config
            .guests
            .iter()
            .map(|g| g.benchmark.profile.class_load_seconds)
            .fold(0.0_f64, f64::max)
            .ceil() as u64;
        let engine = TrafficEngine::new(TrafficSpec {
            scenario: *scenario,
            guests: config.guests.len(),
            healthy_rps,
            startup_seconds: startup_seconds.max(1),
            duration_seconds: config.duration_seconds,
            seed: config.seed,
        });

        // Keep the boot's serialized cache images around: deploy
        // restarts and autoscale relaunches hand each fresh JVM its own
        // byte-identical copy, re-creating the CDS merge opportunity
        // the paper measures.
        let (host, javas, _, cache_images) = boot_world(config);
        let slots: Vec<GuestSlot> = javas
            .into_iter()
            .enumerate()
            .map(|(i, java)| {
                let bench = &config.guests[i].benchmark;
                let mut cost = bench.drive.request_cost(&bench.profile);
                if i == 0 {
                    if let Some(factor) = scenario.noisy_factor {
                        cost = cost.scaled(factor);
                    }
                }
                let pids = vec![java.pid()];
                GuestSlot {
                    java: Some(java),
                    generation: 0,
                    churned_to: 0,
                    cost,
                    pids,
                }
            })
            .collect();
        let cold_per_guest: Vec<f64> = config
            .guests
            .iter()
            .map(|g| cold_estimate_mib(config, g))
            .collect();

        let guests = config.guests.len();
        let report = TrafficReport {
            scenario: scenario.name.to_string(),
            guests,
            duration_seconds: config.duration_seconds,
            offered: 0,
            served: 0,
            dropped: 0,
            restarts: 0,
            scale_ups: 0,
            scale_downs: 0,
            throughput_rps: 0.0,
            sharing_stability: 0.0,
            resident_mib: 0.0,
            ksm: KsmStats::default(),
            huge_mib: 0.0,
            samples: Vec::new(),
            per_guest: vec![GuestTraffic::default(); guests],
        };

        Ok(TrafficWorld {
            config: config.clone(),
            cache_images,
            host,
            slots,
            cold_per_guest,
            audit_enabled: config.audit || cfg!(debug_assertions),
            scanner: KsmScanner::new(config.ksm.warmup).with_threads(config.threads),
            engine,
            healthy_rps,
            warmup_end: Tick::from_seconds(config.ksm.warmup_seconds as f64),
            end: Tick::from_seconds(config.duration_seconds as f64),
            sample_ticks: SAMPLE_SECONDS * u64::from(mem::TICKS_PER_SECOND as u32),
            switched: false,
            wall: TrafficWall::default(),
            report,
            window_offered: 0,
            window_served: 0,
        })
    }

    /// Advances the world through tick `t` (1-based): drains due
    /// traffic events, applies them (plan → commit), runs khugepaged at
    /// second boundaries, runs the KSM scanner, and takes a sharing
    /// sample on the sample cadence.
    pub(crate) fn step(&mut self, t: u64) {
        let now = Tick(t);
        let drain_start = Instant::now();
        let batch = self.engine.events_until(now);
        self.wall.drain_ns += drain_start.elapsed().as_nanos() as u64;
        self.apply_batch(&batch);
        let scan_start = Instant::now();
        // khugepaged, once per simulated second (same cadence and
        // ordering as the tick-model loop in `run`).
        if t.is_multiple_of(mem::TICKS_PER_SECOND) {
            self.host.thp_scan(now);
        }
        if !self.switched && now >= self.warmup_end {
            self.scanner.set_params(self.config.ksm.steady);
            self.switched = true;
        }
        self.scanner.run(self.host.mm_mut(), now);
        if t.is_multiple_of(self.sample_ticks) || t == self.end.0 {
            self.scanner.recount(self.host.mm());
            if self.audit_enabled {
                audit_traffic(&self.host, &self.slots, &self.scanner);
            }
            self.report.samples.push(TrafficSample {
                seconds: now.as_seconds(),
                active_guests: self.slots.iter().filter(|s| s.java.is_some()).count(),
                offered: self.window_offered,
                served: self.window_served,
                pages_sharing: self.scanner.stats().pages_sharing,
            });
            (self.window_offered, self.window_served) = (0, 0);
        }
        self.wall.scan_ns += scan_start.elapsed().as_nanos() as u64;
        self.wall.scan_parallel_ns = self.scanner.wake_totals().parallel_nanos();
    }

    /// Serving capacity per guest for one batch, snapshotted before any
    /// of its events apply: one healthy second of service, inflated by
    /// the memory-pressure slowdown and credited for TLB reach from
    /// whatever fraction of memory is huge-mapped. Offered load past it
    /// is shed. A single pre-batch snapshot (rather than a lazy
    /// per-second cache) makes every request's served/shed split a pure
    /// function of batch-start state — identical on the serial and
    /// parallel paths. Empty when the batch carries no requests.
    fn capacity_snapshot(&self, batch: &[(Tick, WorkloadEvent)]) -> Vec<u64> {
        if !batch
            .iter()
            .any(|(_, e)| matches!(e, WorkloadEvent::Requests { .. }))
        {
            return Vec::new();
        }
        let cold_active: f64 = self
            .slots
            .iter()
            .zip(&self.cold_per_guest)
            .filter(|(s, _)| s.java.is_some())
            .map(|(_, c)| *c)
            .sum();
        let model = PagingModel::default();
        let resident = self.host.resident_mib();
        let allocated = self.host.mm().phys().allocated_frames();
        let huge_fraction = if allocated == 0 {
            0.0
        } else {
            self.host.huge_pages() as f64 / allocated as f64
        };
        // Exactly 1.0 with no huge pages, so non-THP capacity is
        // unchanged by the TLB-reach credit.
        let boost = model.tlb_boost(huge_fraction);
        self.cold_per_guest
            .iter()
            .map(|&cold| {
                let slowdown = model.slowdown(
                    resident,
                    self.config.host.ram_mib,
                    self.config.host.reserve_mib,
                    cold_active + cold,
                );
                (self.healthy_rps * (slowdown * boost).min(1.0))
                    .ceil()
                    .max(1.0) as u64
            })
            .collect()
    }

    /// Applies one drained batch: classify into guest-local versus
    /// host-global work, plan the local work (on the pool when it spans
    /// more than one guest), then commit everything in original order.
    fn apply_batch(&mut self, batch: &[(Tick, WorkloadEvent)]) {
        if batch.is_empty() {
            return;
        }
        let plan_start = Instant::now();
        let caps = self.capacity_snapshot(batch);

        // A guest churned this batch (restarted, added or removed)
        // serialises *all* of its events: its JVM presence and kernel
        // state change mid-batch in ways only in-order application
        // reproduces.
        let n = self.slots.len();
        let mut serial_guest = vec![false; n];
        for (_, event) in batch {
            if let WorkloadEvent::RestartGuest { guest }
            | WorkloadEvent::AddGuest { guest }
            | WorkloadEvent::RemoveGuest { guest } = event
            {
                serial_guest[*guest] = true;
            }
        }

        let mut items: Vec<BatchItem> = Vec::with_capacity(batch.len());
        let mut local_events: Vec<Vec<(Tick, LocalKind)>> = vec![Vec::new(); n];
        let mut local_guests = 0usize;
        for &(at, event) in batch {
            let local = match event {
                WorkloadEvent::StartupTick { guest } if !serial_guest[guest] => {
                    Some((guest, LocalKind::Startup))
                }
                WorkloadEvent::Requests { guest, offered } if !serial_guest[guest] => {
                    // JVM presence is batch-constant for non-churned
                    // guests, so the split is final here.
                    let kind = if self.slots[guest].java.is_some() {
                        let served = offered.min(caps[guest]);
                        LocalKind::Requests {
                            offered,
                            served,
                            dropped: offered - served,
                        }
                    } else {
                        LocalKind::Requests {
                            offered,
                            served: 0,
                            dropped: offered,
                        }
                    };
                    Some((guest, kind))
                }
                _ => None,
            };
            match local {
                Some((guest, kind)) => {
                    if local_events[guest].is_empty() {
                        local_guests += 1;
                    }
                    local_events[guest].push((at, kind));
                    items.push(BatchItem::Local { at, guest, kind });
                }
                None => items.push(BatchItem::Serial(at, event)),
            }
        }

        // Plan: run guest-local work on the pool, one shard per guest.
        // With one thread (or one busy guest) planning would only add
        // tape overhead, so those batches commit directly instead.
        let planned = if self.config.threads > 1 && local_guests > 1 {
            self.plan_parallel(&mut local_events)
        } else {
            Vec::new()
        };
        self.wall.plan_ns += plan_start.elapsed().as_nanos() as u64;

        let commit_start = Instant::now();
        self.commit(&items, &caps, &planned);
        self.wall.commit_ns += commit_start.elapsed().as_nanos() as u64;
    }

    /// The parallel plan phase: each busy guest's local events run on
    /// the worker pool against its own simulator state, recording host
    /// effects into a private tape. Returns the detached tapes with
    /// per-event segment boundaries.
    fn plan_parallel(&mut self, local_events: &mut [Vec<(Tick, LocalKind)>]) -> Vec<PlannedTape> {
        let threads = self.config.threads;
        let (mm, guests) = self.host.mm_and_guests_mut();
        let trace_enabled = mm.tracer().is_enabled();
        let mut shards: Vec<PlanShard<'_>> = guests
            .iter_mut()
            .zip(self.slots.iter_mut())
            .enumerate()
            .filter_map(|(i, (kvm, slot))| {
                let events = std::mem::take(&mut local_events[i]);
                if events.is_empty() {
                    return None;
                }
                Some(PlanShard {
                    guest: i,
                    events,
                    os: &mut kvm.os,
                    slot,
                    tape: MemTape::new(trace_enabled),
                    seg_ends: Vec::new(),
                })
            })
            .collect();
        let _unit: Vec<()> = par::map_sharded(&mut shards, threads, |_, shard| {
            shard.seg_ends.reserve(shard.events.len());
            for &(at, kind) in &shard.events {
                run_local_event(&mut shard.tape, shard.os, shard.slot, at, kind);
                shard.seg_ends.push(shard.tape.len());
            }
        });
        shards
            .into_iter()
            .map(|s| PlannedTape {
                guest: s.guest,
                tape: s.tape,
                seg_ends: s.seg_ends,
            })
            .collect()
    }

    /// The serial commit phase: walk the batch in original order,
    /// applying host-global events live, replaying planned guests'
    /// tape segments, and running unplanned local events directly.
    fn commit(&mut self, items: &[BatchItem], caps: &[u64], planned: &[PlannedTape]) {
        let mut shard_of = vec![usize::MAX; self.slots.len()];
        for (si, p) in planned.iter().enumerate() {
            shard_of[p.guest] = si;
        }
        // (next segment, op offset) per planned guest.
        let mut cursor: Vec<(usize, usize)> = vec![(0, 0); planned.len()];
        for item in items {
            match *item {
                BatchItem::Serial(at, event) => apply_serial_event(
                    &self.config,
                    &self.cache_images,
                    &mut self.host,
                    &mut self.slots,
                    caps,
                    at,
                    event,
                    &mut self.report,
                    &mut self.window_offered,
                    &mut self.window_served,
                ),
                BatchItem::Local { at, guest, kind } => {
                    if let LocalKind::Requests {
                        offered,
                        served,
                        dropped,
                    } = kind
                    {
                        self.report.offered += offered;
                        self.report.served += served;
                        self.report.dropped += dropped;
                        let g = &mut self.report.per_guest[guest];
                        g.offered += offered;
                        g.served += served;
                        g.dropped += dropped;
                        self.window_offered += offered;
                        self.window_served += served;
                    }
                    let si = shard_of[guest];
                    if si == usize::MAX {
                        let (mm, g) = self.host.mm_and_guest_mut(guest);
                        run_local_event(mm, &mut g.os, &mut self.slots[guest], at, kind);
                    } else {
                        let (seg, start) = cursor[si];
                        let end = planned[si].seg_ends[seg];
                        planned[si]
                            .tape
                            .replay_range(self.host.mm_mut(), start..end);
                        cursor[si] = (seg + 1, end);
                    }
                }
            }
        }
    }

    /// Settles kernel churn for every still-active guest so the final
    /// accounting does not depend on who happened to get the last
    /// request (one batched call per guest), then recounts, audits and
    /// fills in the report's end-of-run fields.
    pub(crate) fn finish(mut self) -> TrafficReport {
        let end = self.end;
        for (guest, slot) in self.slots.iter_mut().enumerate() {
            if slot.java.is_some() {
                let (mm, g) = self.host.mm_and_guest_mut(guest);
                catch_up_kernel(mm, &mut g.os, slot, end);
            }
        }
        self.scanner.recount(self.host.mm());
        if self.audit_enabled {
            audit_traffic(&self.host, &self.slots, &self.scanner);
        }

        let mut report = self.report;
        report.ksm = self.scanner.stats();
        report.resident_mib = self.host.resident_mib();
        report.huge_mib = self.host.huge_mib();
        report.throughput_rps = report.served as f64 / self.config.duration_seconds as f64;
        report.sharing_stability = stability(&report.samples);
        report
    }

    /// Guest views over the current fleet (drained guests expose no
    /// Java pids), for attribution snapshots. Borrows each slot's pid
    /// list — no per-view allocation on the daemon's publish path.
    pub(crate) fn views(&self) -> Vec<GuestView<'_>> {
        self.host
            .guests()
            .iter()
            .zip(&self.slots)
            .map(|(g, slot)| GuestView::borrowed(&g.name, &g.os, &slot.pids))
            .collect()
    }
}

impl Experiment {
    /// Runs `config`'s fleet under `scenario`'s request traffic instead
    /// of the tick-scripted workload. Deterministic in `config.seed` and
    /// byte-identical at any `config.threads`.
    ///
    /// # Errors
    ///
    /// Returns a typed [`Error`] when the configuration is not runnable
    /// (see [`ExperimentConfig::validate`]).
    pub fn run_traffic(
        config: &ExperimentConfig,
        scenario: &Scenario,
    ) -> Result<TrafficReport, Error> {
        Ok(Self::run_traffic_timed(config, scenario)?.0)
    }

    /// [`run_traffic`](Self::run_traffic), also returning the wall-clock
    /// phase breakdown. The report is deterministic; the
    /// [`TrafficWall`] is wall-clock and varies run to run.
    ///
    /// # Errors
    ///
    /// Returns a typed [`Error`] when the configuration is not runnable
    /// (see [`ExperimentConfig::validate`]).
    pub fn run_traffic_timed(
        config: &ExperimentConfig,
        scenario: &Scenario,
    ) -> Result<(TrafficReport, TrafficWall), Error> {
        let mut world = TrafficWorld::new(config, scenario)?;
        for t in 1..=world.end.0 {
            world.step(t);
        }
        let wall = world.wall;
        Ok((world.finish(), wall))
    }
}

/// Runs one guest-local event against any [`MemSink`] — the real
/// [`HostMm`](paging::HostMm) on the serial path, a [`MemTape`] during
/// the parallel plan. Shared so both paths execute the exact same op
/// sequence by construction.
fn run_local_event<M: MemSink>(
    mm: &mut M,
    os: &mut GuestOs,
    slot: &mut GuestSlot,
    at: Tick,
    kind: LocalKind,
) {
    match kind {
        LocalKind::Startup => {
            let Some(mut java) = slot.java.take() else {
                return;
            };
            catch_up_kernel(mm, os, slot, at);
            java.advance_startup(mm, os, at);
            slot.java = Some(java);
        }
        LocalKind::Requests {
            served, dropped, ..
        } => {
            let Some(mut java) = slot.java.take() else {
                // A drained guest sheds everything still routed to it
                // in the hand-off second (tallied by the caller).
                return;
            };
            catch_up_kernel(mm, os, slot, at);
            java.serve_requests(mm, os, &slot.cost, served, at);
            mm.trace_now(at.0);
            mm.trace(|| EventKind::RequestServe {
                pid: java.pid().0,
                served,
                dropped,
            });
            slot.java = Some(java);
        }
    }
}

/// Applies one host-global workload event live, updating the report
/// tallies. Guest-local events route through [`run_local_event`] with
/// the same capacity snapshot the parallel plan used.
#[allow(clippy::too_many_arguments)]
fn apply_serial_event(
    config: &ExperimentConfig,
    cache_images: &HashMap<u64, Vec<u8>>,
    host: &mut KvmHost,
    slots: &mut [GuestSlot],
    caps: &[u64],
    at: Tick,
    event: WorkloadEvent,
    report: &mut TrafficReport,
    window_offered: &mut u64,
    window_served: &mut u64,
) {
    match event {
        WorkloadEvent::StartupTick { guest } => {
            let (mm, g) = host.mm_and_guest_mut(guest);
            run_local_event(mm, &mut g.os, &mut slots[guest], at, LocalKind::Startup);
        }
        WorkloadEvent::Requests { guest, offered } => {
            report.offered += offered;
            report.per_guest[guest].offered += offered;
            *window_offered += offered;
            let (served, dropped) = if slots[guest].java.is_some() {
                let served = offered.min(caps[guest]);
                (served, offered - served)
            } else {
                (0, offered)
            };
            let (mm, g) = host.mm_and_guest_mut(guest);
            run_local_event(
                mm,
                &mut g.os,
                &mut slots[guest],
                at,
                LocalKind::Requests {
                    offered,
                    served,
                    dropped,
                },
            );
            report.served += served;
            report.dropped += dropped;
            report.per_guest[guest].served += served;
            report.per_guest[guest].dropped += dropped;
            *window_served += served;
        }
        WorkloadEvent::RestartGuest { guest } => {
            report.restarts += 1;
            relaunch(config, cache_images, host, slots, guest, at);
        }
        WorkloadEvent::AddGuest { guest } => {
            report.scale_ups += 1;
            if slots[guest].java.is_none() {
                // Skip the idle gap: a drained guest's kernel was
                // quiesced, not accruing churn debt.
                slots[guest].churned_to = at.0;
                relaunch(config, cache_images, host, slots, guest, at);
            }
        }
        WorkloadEvent::RemoveGuest { guest } => {
            report.scale_downs += 1;
            if let Some(java) = slots[guest].java.take() {
                let (mm, g) = host.mm_and_guest_mut(guest);
                catch_up_kernel(mm, &mut g.os, &mut slots[guest], at);
                g.os.kill(mm, java.pid());
                slots[guest].pids.clear();
            }
        }
        WorkloadEvent::Phase { phase, offered_rps } => {
            let tracer = host.mm().tracer();
            tracer.set_now(at.0);
            tracer.emit_with(|| EventKind::TrafficPhase {
                phase,
                offered_rps: offered_rps.round() as u64,
            });
        }
    }
}

/// Kills the guest's current JVM (if any) and launches a fresh one with
/// a new process salt and its own copy of the shared class cache.
fn relaunch(
    config: &ExperimentConfig,
    cache_images: &HashMap<u64, Vec<u8>>,
    host: &mut KvmHost,
    slots: &mut [GuestSlot],
    guest: usize,
    at: Tick,
) {
    let spec = &config.guests[guest];
    let slot = &mut slots[guest];
    let (mm, g) = host.mm_and_guest_mut(guest);
    catch_up_kernel(mm, &mut g.os, slot, at);
    slot.generation += 1;
    if let Some(java) = slot.java.take() {
        g.os.kill(mm, java.pid());
    }
    let mut cfg = JvmConfig::new(
        JVM_VERSION,
        mix(config.seed, 0x9a17 ^ (slot.generation << 16), guest as u64),
    );
    // The fresh process re-reads its guest's cache file: a byte-identical
    // copy decoded from the same master image the boot used.
    if let Some(bytes) = cache_images.get(&spec.benchmark.profile.workload_id) {
        let copy = SharedClassCache::from_bytes(bytes).expect("cache image decodes");
        cfg = cfg.with_shared_cache(copy);
    }
    let vm = JavaVm::launch(mm, &mut g.os, cfg, spec.benchmark.profile.clone(), at);
    slot.pids.clear();
    slot.pids.push(vm.pid());
    slot.java = Some(vm);
}

/// Advances a guest's kernel background churn from wherever it last ran
/// to `at`, in one batched call against any [`MemSink`].
fn catch_up_kernel<M: MemSink>(mm: &mut M, os: &mut GuestOs, slot: &mut GuestSlot, at: Tick) {
    let ticks = at.0.saturating_sub(slot.churned_to);
    if ticks == 0 {
        return;
    }
    os.tick_many(mm, at, ticks as u32);
    slot.churned_to = at.0;
}

/// The cross-layer conservation audit over a traffic-run world, where
/// drained guests have no JVM process.
fn audit_traffic(host: &KvmHost, slots: &[GuestSlot], scanner: &KsmScanner) {
    let views: Vec<GuestView<'_>> = host
        .guests()
        .iter()
        .zip(slots)
        .map(|(g, slot)| GuestView::borrowed(&g.name, &g.os, &slot.pids))
        .collect();
    let world = audit::World {
        mm: host.mm(),
        guests: views,
        scanner: Some(scanner),
    };
    if let Err(violation) = audit::check_world(&world) {
        panic!("memory-accounting audit failed under traffic: {violation}");
    }
}

/// Sharing stability over the second half of the samples: how little
/// `pages_sharing` moved between consecutive samples once the fleet
/// warmed up, as `1 − mean |Δ| / mean level`, clamped to `[0, 1]`.
fn stability(samples: &[TrafficSample]) -> f64 {
    let tail = &samples[samples.len() / 2..];
    if tail.len() < 2 {
        return 1.0;
    }
    let mean = tail.iter().map(|s| s.pages_sharing as f64).sum::<f64>() / tail.len() as f64;
    if mean <= 0.0 {
        return 1.0;
    }
    let mean_delta = tail
        .windows(2)
        .map(|w| (w[1].pages_sharing as f64 - w[0].pages_sharing as f64).abs())
        .sum::<f64>()
        / (tail.len() - 1) as f64;
    (1.0 - mean_delta / mean).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, seconds: u64) -> ExperimentConfig {
        ExperimentConfig::tiny_test(n, true).with_duration_seconds(seconds)
    }

    #[test]
    fn constant_traffic_serves_most_of_the_offered_load() {
        let report = Experiment::run_traffic(&cfg(2, 60), &Scenario::constant()).unwrap();
        assert!(report.offered > 0);
        assert!(report.served > 0);
        assert!(
            report.served as f64 >= 0.5 * report.offered as f64,
            "served {} of {}",
            report.served,
            report.offered
        );
        assert_eq!(report.offered, report.served + report.dropped);
        assert!(report.ksm.pages_sharing > 0);
        assert_eq!(report.samples.len(), 6);
    }

    #[test]
    fn traffic_runs_are_deterministic_and_thread_independent() {
        let base = cfg(2, 60);
        let scenario = Scenario::flash_crowd(60);
        let a = Experiment::run_traffic(&base, &scenario).unwrap();
        let b = Experiment::run_traffic(&base, &scenario).unwrap();
        assert_eq!(a, b);
        let threaded = Experiment::run_traffic(&base.clone().with_threads(4), &scenario).unwrap();
        assert_eq!(a.render(), threaded.render());
        assert_eq!(a, threaded);
    }

    #[test]
    fn churn_scenarios_stay_thread_independent() {
        // Rolling deploys and autoscale exercise the serial/local split:
        // churned guests must serialise while the rest of the fleet
        // plans in parallel, and the commit order must still be exact.
        for (config, scenario) in [
            (cfg(3, 90), Scenario::rolling_deploy(90, 3)),
            (cfg(4, 90), Scenario::autoscale(90, 4)),
        ] {
            let serial = Experiment::run_traffic(&config, &scenario).unwrap();
            for threads in [2, 8] {
                let t = Experiment::run_traffic(&config.clone().with_threads(threads), &scenario)
                    .unwrap();
                assert_eq!(serial, t, "{} diverged at {threads} threads", scenario.name);
            }
        }
    }

    #[test]
    fn wall_phases_are_recorded_and_stay_out_of_the_report() {
        let (report, wall) =
            Experiment::run_traffic_timed(&cfg(2, 30), &Scenario::constant()).unwrap();
        assert!(wall.scan_ns > 0);
        assert!(wall.drain_ns > 0);
        assert!(wall.total_ns() >= wall.serial_ns());
        // Same config, fresh run: the deterministic report matches even
        // though the wall numbers will not.
        let again = Experiment::run_traffic(&cfg(2, 30), &Scenario::constant()).unwrap();
        assert_eq!(report, again);
    }

    #[test]
    fn thp_traffic_reports_huge_memory_and_stays_deterministic() {
        use crate::KsmSchedule;
        use ksm::KsmParams;
        use paging::ThpPolicy;
        // KSM off, so the collapsed blocks survive to the final report.
        let no_ksm = KsmSchedule {
            warmup: KsmParams::new(0, 100),
            steady: KsmParams::new(0, 100),
            warmup_seconds: 0,
        };
        let config = cfg(2, 60)
            .with_ksm(no_ksm)
            .with_thp(ThpPolicy::Always, ThpPolicy::Always);
        let a = Experiment::run_traffic(&config, &Scenario::constant()).unwrap();
        let threaded =
            Experiment::run_traffic(&config.clone().with_threads(4), &Scenario::constant())
                .unwrap();
        assert_eq!(a, threaded);
        assert!(a.huge_mib > 0.0, "huge {}", a.huge_mib);
        assert!(a.render().contains("thp huge"));
        // The non-THP render carries no THP line at all.
        let plain = Experiment::run_traffic(&cfg(2, 60), &Scenario::constant()).unwrap();
        assert_eq!(plain.huge_mib, 0.0);
        assert!(!plain.render().contains("thp"));
    }

    #[test]
    fn rolling_deploy_restarts_and_recovers_sharing() {
        let scenario = Scenario::rolling_deploy(90, 3);
        let report = Experiment::run_traffic(&cfg(3, 90), &scenario).unwrap();
        assert_eq!(report.restarts, 3);
        assert!(
            report.ksm.pages_sharing > 0,
            "sharing re-merged after waves"
        );
    }

    #[test]
    fn autoscale_changes_the_active_fleet() {
        let scenario = Scenario::autoscale(90, 4);
        let report = Experiment::run_traffic(&cfg(4, 90), &scenario).unwrap();
        assert!(report.scale_downs > 0);
        assert!(report.scale_ups > 0);
        let active: Vec<usize> = report.samples.iter().map(|s| s.active_guests).collect();
        assert!(
            active.iter().any(|&a| a < 4),
            "active never dipped: {active:?}"
        );
    }

    #[test]
    fn noisy_neighbor_serves_with_scaled_cost() {
        let report = Experiment::run_traffic(&cfg(2, 60), &Scenario::noisy_neighbor()).unwrap();
        assert!(report.served > 0);
    }

    #[test]
    fn invalid_configs_yield_typed_errors() {
        let mut empty = cfg(2, 60);
        empty.guests.clear();
        assert_eq!(
            Experiment::run_traffic(&empty, &Scenario::constant()).unwrap_err(),
            Error::NoGuests
        );
        let zero = cfg(2, 0);
        assert_eq!(
            Experiment::run_traffic(&zero, &Scenario::constant()).unwrap_err(),
            Error::ZeroDuration
        );
    }

    #[test]
    fn report_renders_golden_shaped_text() {
        let report = Experiment::run_traffic(&cfg(1, 30), &Scenario::constant()).unwrap();
        let text = report.render();
        assert!(text.starts_with("traffic constant | 1 guests | 30 s\n"));
        assert!(text.contains("sharing stability"));
        assert!(text.lines().count() >= 7, "got:\n{text}");
    }
}
