//! The request-driven traffic experiment runner.
//!
//! [`Experiment::run_traffic`] replaces the tick-scripted workload side
//! of [`Experiment::run`] with the discrete-event engine from the
//! [`traffic`] crate: seeded request arrivals on a scenario's offered-
//! load curve drive allocation, GC pressure, JIT warm-up and page
//! dirtying in the guest JVMs, while fleet-churn events (rolling-deploy
//! restarts, autoscale add/remove) reshape the fleet mid-run. The KSM
//! scanner runs exactly as in the tick model — the experiment measures
//! how stable its sharing stays under realistic traffic.
//!
//! Costs follow the engine's invariant: a guest only pays when an event
//! addresses it. Kernel background churn is batched — each guest
//! remembers the last tick it was advanced to and catches up in one
//! [`tick_many`](oskernel::GuestOs::tick_many) call at its next event —
//! so a fleet that is mostly idle costs O(pending events), not
//! O(guests), per tick. Reports are byte-identical at any `threads`
//! setting and across platforms (see DESIGN.md §11).

use crate::run::{boot_world, cold_estimate_mib, mix, JVM_VERSION};
use crate::{Error, Experiment, ExperimentConfig};
use analysis::GuestView;
use cds::SharedClassCache;
use hypervisor::{KvmHost, PagingModel};
use jvm::{JavaVm, JvmConfig, RequestCost};
use ksm::{KsmScanner, KsmStats};
use mem::Tick;
use obs::EventKind;
use std::collections::HashMap;
use std::fmt::Write as _;
use traffic::{Scenario, TrafficEngine, TrafficSpec};
use workloads::{Workload, WorkloadEvent};

/// Seconds between sharing samples in a traffic run.
const SAMPLE_SECONDS: u64 = 10;

/// One sharing/throughput sample of a traffic run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficSample {
    /// Simulated seconds since the start of the run.
    pub seconds: f64,
    /// Guests running a JVM at the sample point.
    pub active_guests: usize,
    /// Requests offered fleet-wide since the previous sample.
    pub offered: u64,
    /// Requests served fleet-wide since the previous sample.
    pub served: u64,
    /// `pages_sharing` at the sample point (freshly recounted).
    pub pages_sharing: u64,
}

/// What a traffic run reports: throughput under over-commit versus the
/// offered load, fleet churn counts, and how stable KSM's sharing stayed
/// while traffic reshaped guest memory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficReport {
    /// Scenario name ([`Scenario::name`]).
    pub scenario: String,
    /// Initial fleet size.
    pub guests: usize,
    /// Run length, seconds.
    pub duration_seconds: u64,
    /// Requests offered fleet-wide over the whole run.
    pub offered: u64,
    /// Requests served fleet-wide over the whole run.
    pub served: u64,
    /// Requests shed (offered while over capacity or with no JVM).
    pub dropped: u64,
    /// Rolling-deploy JVM restarts performed.
    pub restarts: u64,
    /// Autoscale guest additions performed.
    pub scale_ups: u64,
    /// Autoscale guest drains performed.
    pub scale_downs: u64,
    /// Mean served throughput, requests/sec over the run.
    pub throughput_rps: f64,
    /// Sharing stability over the second half of the run:
    /// `1 − mean |Δ pages_sharing| / mean pages_sharing` across samples,
    /// clamped to `[0, 1]`. `1.0` means sharing held perfectly steady
    /// under the traffic; rolling deploys and flash crowds push it down.
    pub sharing_stability: f64,
    /// Final host-resident memory, MiB.
    pub resident_mib: f64,
    /// Final KSM counters (freshly recounted).
    pub ksm: KsmStats,
    /// Host memory mapped through 2 MiB huge frames at the end of the
    /// run, MiB. Zero under the default `ThpPolicy::Never` — and then
    /// omitted from [`render`](Self::render), keeping the non-THP golden
    /// byte-identical.
    pub huge_mib: f64,
    /// Per-interval samples, every [`SAMPLE_SECONDS`].
    pub samples: Vec<TrafficSample>,
    /// Per-guest request tallies over the whole run, indexed by guest
    /// slot. Sums across guests equal the fleet-wide
    /// `offered`/`served`/`dropped` fields. Not rendered (the golden
    /// text predates it); exported through
    /// [`record_metrics`](Self::record_metrics) and the daemon.
    pub per_guest: Vec<GuestTraffic>,
}

/// One guest's request tallies over a traffic run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuestTraffic {
    /// Requests routed to this guest.
    pub offered: u64,
    /// Requests this guest served within capacity.
    pub served: u64,
    /// Requests shed (over capacity, or routed while drained).
    pub dropped: u64,
}

impl TrafficReport {
    /// Renders the report as the deterministic text table pinned by
    /// `tests/golden/traffic.txt`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "traffic {} | {} guests | {} s",
            self.scenario, self.guests, self.duration_seconds
        );
        let _ = writeln!(
            out,
            "offered {} | served {} | shed {} | throughput {:.2} r/s",
            self.offered, self.served, self.dropped, self.throughput_rps
        );
        let _ = writeln!(
            out,
            "restarts {} | scale-ups {} | scale-downs {}",
            self.restarts, self.scale_ups, self.scale_downs
        );
        let _ = writeln!(
            out,
            "sharing stability {:.3} | final pages_sharing {} | resident {:.1} MiB",
            self.sharing_stability, self.ksm.pages_sharing, self.resident_mib
        );
        if self.huge_mib > 0.0 {
            let _ = writeln!(
                out,
                "thp huge {:.1} MiB | thp splits {}",
                self.huge_mib, self.ksm.thp_splits
            );
        }
        let _ = writeln!(
            out,
            "{:>8} {:>7} {:>8} {:>7} {:>8}",
            "seconds", "active", "offered", "served", "sharing"
        );
        for s in &self.samples {
            let _ = writeln!(
                out,
                "{:>8.0} {:>7} {:>8} {:>7} {:>8}",
                s.seconds, s.active_guests, s.offered, s.served, s.pages_sharing
            );
        }
        out
    }

    /// Exports the run's deterministic traffic counters into `reg`:
    /// fleet-wide and per-guest offered/served/shed, churn counts, and
    /// the sharing-stability gauge. All series are simulated-state and
    /// byte-identical at any thread count.
    pub fn record_metrics(&self, reg: &mut obs::MetricsRegistry) {
        reg.counter(
            "traffic_offered_total",
            "Requests offered fleet-wide.",
            &[],
            self.offered,
        );
        reg.counter(
            "traffic_served_total",
            "Requests served fleet-wide.",
            &[],
            self.served,
        );
        reg.counter(
            "traffic_shed_total",
            "Requests shed fleet-wide (over capacity or drained).",
            &[],
            self.dropped,
        );
        reg.counter(
            "traffic_restarts_total",
            "Rolling-deploy JVM restarts performed.",
            &[],
            self.restarts,
        );
        reg.counter(
            "traffic_scale_ups_total",
            "Autoscale guest additions performed.",
            &[],
            self.scale_ups,
        );
        reg.counter(
            "traffic_scale_downs_total",
            "Autoscale guest drains performed.",
            &[],
            self.scale_downs,
        );
        reg.gauge(
            "traffic_sharing_stability",
            "1 - mean |delta pages_sharing| / mean pages_sharing over the run's second half.",
            &[],
            self.sharing_stability,
        );
        const GUEST_HELP: &str = "Per-guest request tallies over the run.";
        for (i, g) in self.per_guest.iter().enumerate() {
            let idx = i.to_string();
            reg.counter(
                "traffic_guest_offered_total",
                GUEST_HELP,
                &[("guest", &idx)],
                g.offered,
            );
            reg.counter(
                "traffic_guest_served_total",
                GUEST_HELP,
                &[("guest", &idx)],
                g.served,
            );
            reg.counter(
                "traffic_guest_shed_total",
                GUEST_HELP,
                &[("guest", &idx)],
                g.dropped,
            );
        }
    }
}

/// Mutable per-guest traffic state the event sink maintains.
pub(crate) struct GuestSlot {
    /// The JVM currently running in this guest, if any.
    pub(crate) java: Option<JavaVm>,
    /// JVM launch generation (bumps the process salt on restart).
    generation: u64,
    /// Last tick this guest's kernel background churn was advanced to.
    churned_to: u64,
    /// Per-request memory cost for this guest's workload.
    cost: RequestCost,
}

/// A booted traffic world that can be advanced one tick at a time.
///
/// [`Experiment::run_traffic`] is a plain loop over [`step`](Self::step)
/// followed by [`finish`](Self::finish); the monitoring daemon drives
/// the same steps but pauses between them to publish state, so the two
/// paths are identical by construction.
pub(crate) struct TrafficWorld {
    config: ExperimentConfig,
    cache_images: HashMap<u64, Vec<u8>>,
    pub(crate) host: KvmHost,
    pub(crate) slots: Vec<GuestSlot>,
    cold_per_guest: Vec<f64>,
    audit_enabled: bool,
    pub(crate) scanner: KsmScanner,
    engine: TrafficEngine,
    healthy_rps: f64,
    warmup_end: Tick,
    pub(crate) end: Tick,
    sample_ticks: u64,
    switched: bool,
    slowdown_cache: (u64, f64),
    pub(crate) report: TrafficReport,
    window_offered: u64,
    window_served: u64,
}

impl TrafficWorld {
    /// Validates `config` and boots the fleet under `scenario`.
    pub(crate) fn new(
        config: &ExperimentConfig,
        scenario: &Scenario,
    ) -> Result<TrafficWorld, Error> {
        config.validate()?;
        let healthy_rps = config.guests[0].benchmark.drive.healthy_rps();
        let startup_seconds = config
            .guests
            .iter()
            .map(|g| g.benchmark.profile.class_load_seconds)
            .fold(0.0_f64, f64::max)
            .ceil() as u64;
        let engine = TrafficEngine::new(TrafficSpec {
            scenario: *scenario,
            guests: config.guests.len(),
            healthy_rps,
            startup_seconds: startup_seconds.max(1),
            duration_seconds: config.duration_seconds,
            seed: config.seed,
        });

        let (host, javas, caches) = boot_world(config);
        // Keep the serialized cache images around: deploy restarts and
        // autoscale relaunches hand each fresh JVM its own byte-identical
        // copy, re-creating the CDS merge opportunity the paper measures.
        let cache_images: HashMap<u64, Vec<u8>> =
            caches.iter().map(|(&id, c)| (id, c.to_bytes())).collect();
        let slots: Vec<GuestSlot> = javas
            .into_iter()
            .enumerate()
            .map(|(i, java)| {
                let bench = &config.guests[i].benchmark;
                let mut cost = bench.drive.request_cost(&bench.profile);
                if i == 0 {
                    if let Some(factor) = scenario.noisy_factor {
                        cost = cost.scaled(factor);
                    }
                }
                GuestSlot {
                    java: Some(java),
                    generation: 0,
                    churned_to: 0,
                    cost,
                }
            })
            .collect();
        let cold_per_guest: Vec<f64> = config
            .guests
            .iter()
            .map(|g| cold_estimate_mib(config, g))
            .collect();

        let guests = config.guests.len();
        let report = TrafficReport {
            scenario: scenario.name.to_string(),
            guests,
            duration_seconds: config.duration_seconds,
            offered: 0,
            served: 0,
            dropped: 0,
            restarts: 0,
            scale_ups: 0,
            scale_downs: 0,
            throughput_rps: 0.0,
            sharing_stability: 0.0,
            resident_mib: 0.0,
            ksm: KsmStats::default(),
            huge_mib: 0.0,
            samples: Vec::new(),
            per_guest: vec![GuestTraffic::default(); guests],
        };

        Ok(TrafficWorld {
            config: config.clone(),
            cache_images,
            host,
            slots,
            cold_per_guest,
            audit_enabled: config.audit || cfg!(debug_assertions),
            scanner: KsmScanner::new(config.ksm.warmup).with_threads(config.threads),
            engine,
            healthy_rps,
            warmup_end: Tick::from_seconds(config.ksm.warmup_seconds as f64),
            end: Tick::from_seconds(config.duration_seconds as f64),
            sample_ticks: SAMPLE_SECONDS * u64::from(mem::TICKS_PER_SECOND as u32),
            switched: false,
            // The per-second capacity model: memory pressure inflates
            // service times, shrinking how many of the offered requests
            // a guest can serve. Recomputed lazily once per second
            // (`resident_mib` walks frame counters, not pages, so this
            // is cheap but not free).
            slowdown_cache: (u64::MAX, 1.0),
            report,
            window_offered: 0,
            window_served: 0,
        })
    }

    /// Advances the world through tick `t` (1-based): drains due
    /// traffic events, runs khugepaged at second boundaries, runs the
    /// KSM scanner, and takes a sharing sample on the sample cadence.
    pub(crate) fn step(&mut self, t: u64) {
        let now = Tick(t);
        for (at, event) in self.engine.events_until(now) {
            apply_event(
                &self.config,
                &self.cache_images,
                &mut self.host,
                &mut self.slots,
                &self.cold_per_guest,
                &mut self.slowdown_cache,
                self.healthy_rps,
                at,
                event,
                &mut self.report,
                &mut self.window_offered,
                &mut self.window_served,
            );
        }
        // khugepaged, once per simulated second (same cadence and
        // ordering as the tick-model loop in `run`).
        if t.is_multiple_of(mem::TICKS_PER_SECOND) {
            self.host.thp_scan(now);
        }
        if !self.switched && now >= self.warmup_end {
            self.scanner.set_params(self.config.ksm.steady);
            self.switched = true;
        }
        self.scanner.run(self.host.mm_mut(), now);
        if t.is_multiple_of(self.sample_ticks) || t == self.end.0 {
            self.scanner.recount(self.host.mm());
            if self.audit_enabled {
                audit_traffic(&self.host, &self.slots, &self.scanner);
            }
            self.report.samples.push(TrafficSample {
                seconds: now.as_seconds(),
                active_guests: self.slots.iter().filter(|s| s.java.is_some()).count(),
                offered: self.window_offered,
                served: self.window_served,
                pages_sharing: self.scanner.stats().pages_sharing,
            });
            (self.window_offered, self.window_served) = (0, 0);
        }
    }

    /// Settles kernel churn for every still-active guest so the final
    /// accounting does not depend on who happened to get the last
    /// request (one batched call per guest), then recounts, audits and
    /// fills in the report's end-of-run fields.
    pub(crate) fn finish(mut self) -> TrafficReport {
        let end = self.end;
        for (guest, slot) in self.slots.iter_mut().enumerate() {
            if slot.java.is_some() {
                catch_up_kernel(&mut self.host, slot, guest, end);
            }
        }
        self.scanner.recount(self.host.mm());
        if self.audit_enabled {
            audit_traffic(&self.host, &self.slots, &self.scanner);
        }

        let mut report = self.report;
        report.ksm = self.scanner.stats();
        report.resident_mib = self.host.resident_mib();
        report.huge_mib = self.host.huge_mib();
        report.throughput_rps = report.served as f64 / self.config.duration_seconds as f64;
        report.sharing_stability = stability(&report.samples);
        report
    }

    /// Guest views over the current fleet (drained guests expose no
    /// Java pids), for attribution snapshots.
    pub(crate) fn views(&self) -> Vec<GuestView<'_>> {
        self.host
            .guests()
            .iter()
            .zip(&self.slots)
            .map(|(g, slot)| {
                let pids = slot.java.as_ref().map(|j| j.pid()).into_iter().collect();
                GuestView::new(&g.name, &g.os, pids)
            })
            .collect()
    }
}

impl Experiment {
    /// Runs `config`'s fleet under `scenario`'s request traffic instead
    /// of the tick-scripted workload. Deterministic in `config.seed` and
    /// byte-identical at any `config.threads`.
    ///
    /// # Errors
    ///
    /// Returns a typed [`Error`] when the configuration is not runnable
    /// (see [`ExperimentConfig::validate`]).
    pub fn run_traffic(
        config: &ExperimentConfig,
        scenario: &Scenario,
    ) -> Result<TrafficReport, Error> {
        let mut world = TrafficWorld::new(config, scenario)?;
        for t in 1..=world.end.0 {
            world.step(t);
        }
        Ok(world.finish())
    }
}

/// Applies one workload event to the world, updating the report tallies.
#[allow(clippy::too_many_arguments)]
fn apply_event(
    config: &ExperimentConfig,
    cache_images: &HashMap<u64, Vec<u8>>,
    host: &mut KvmHost,
    slots: &mut [GuestSlot],
    cold_per_guest: &[f64],
    slowdown_cache: &mut (u64, f64),
    healthy_rps: f64,
    at: Tick,
    event: WorkloadEvent,
    report: &mut TrafficReport,
    window_offered: &mut u64,
    window_served: &mut u64,
) {
    match event {
        WorkloadEvent::StartupTick { guest } => {
            let Some(mut java) = slots[guest].java.take() else {
                return;
            };
            catch_up_kernel(host, &mut slots[guest], guest, at);
            let (mm, g) = host.mm_and_guest_mut(guest);
            java.advance_startup(mm, &mut g.os, at);
            slots[guest].java = Some(java);
        }
        WorkloadEvent::Requests { guest, offered } => {
            report.offered += offered;
            report.per_guest[guest].offered += offered;
            *window_offered += offered;
            let Some(mut java) = slots[guest].java.take() else {
                // A drained guest sheds everything still routed to it
                // in the hand-off second.
                report.dropped += offered;
                report.per_guest[guest].dropped += offered;
                return;
            };
            let second = (at.0 - 1) / u64::from(mem::TICKS_PER_SECOND as u32);
            if slowdown_cache.0 != second {
                let cold: f64 = slots
                    .iter()
                    .zip(cold_per_guest)
                    .filter(|(s, _)| s.java.is_some())
                    .map(|(_, c)| c)
                    .sum::<f64>()
                    + cold_per_guest[guest];
                let model = PagingModel::default();
                let slowdown = model.slowdown(
                    host.resident_mib(),
                    config.host.ram_mib,
                    config.host.reserve_mib,
                    cold,
                );
                // TLB-reach credit from whatever fraction of memory is
                // huge-mapped this second; exactly 1.0 with no huge
                // pages, so non-THP capacity is unchanged.
                let allocated = host.mm().phys().allocated_frames();
                let huge_fraction = if allocated == 0 {
                    0.0
                } else {
                    host.huge_pages() as f64 / allocated as f64
                };
                *slowdown_cache = (second, (slowdown * model.tlb_boost(huge_fraction)).min(1.0));
            }
            // Capacity: one healthy second of service, inflated by the
            // memory-pressure slowdown. Offered load past it is shed.
            let capacity = (healthy_rps * slowdown_cache.1).ceil().max(1.0) as u64;
            let served = offered.min(capacity);
            let dropped = offered - served;
            catch_up_kernel(host, &mut slots[guest], guest, at);
            let (mm, g) = host.mm_and_guest_mut(guest);
            java.serve_requests(mm, &mut g.os, &slots[guest].cost, served, at);
            mm.tracer().set_now(at.0);
            mm.tracer().emit_with(|| EventKind::RequestServe {
                pid: java.pid().0,
                served,
                dropped,
            });
            slots[guest].java = Some(java);
            report.served += served;
            report.dropped += dropped;
            report.per_guest[guest].served += served;
            report.per_guest[guest].dropped += dropped;
            *window_served += served;
        }
        WorkloadEvent::RestartGuest { guest } => {
            report.restarts += 1;
            relaunch(config, cache_images, host, slots, guest, at);
        }
        WorkloadEvent::AddGuest { guest } => {
            report.scale_ups += 1;
            if slots[guest].java.is_none() {
                // Skip the idle gap: a drained guest's kernel was
                // quiesced, not accruing churn debt.
                slots[guest].churned_to = at.0;
                relaunch(config, cache_images, host, slots, guest, at);
            }
        }
        WorkloadEvent::RemoveGuest { guest } => {
            report.scale_downs += 1;
            if let Some(java) = slots[guest].java.take() {
                catch_up_kernel(host, &mut slots[guest], guest, at);
                let (mm, g) = host.mm_and_guest_mut(guest);
                g.os.kill(mm, java.pid());
            }
        }
        WorkloadEvent::Phase { phase, offered_rps } => {
            let tracer = host.mm().tracer();
            tracer.set_now(at.0);
            tracer.emit_with(|| EventKind::TrafficPhase {
                phase,
                offered_rps: offered_rps.round() as u64,
            });
        }
    }
}

/// Kills the guest's current JVM (if any) and launches a fresh one with
/// a new process salt and its own copy of the shared class cache.
fn relaunch(
    config: &ExperimentConfig,
    cache_images: &HashMap<u64, Vec<u8>>,
    host: &mut KvmHost,
    slots: &mut [GuestSlot],
    guest: usize,
    at: Tick,
) {
    catch_up_kernel(host, &mut slots[guest], guest, at);
    let spec = &config.guests[guest];
    let slot = &mut slots[guest];
    slot.generation += 1;
    let (mm, g) = host.mm_and_guest_mut(guest);
    if let Some(java) = slot.java.take() {
        g.os.kill(mm, java.pid());
    }
    let mut cfg = JvmConfig::new(
        JVM_VERSION,
        mix(config.seed, 0x9a17 ^ (slot.generation << 16), guest as u64),
    );
    // The fresh process re-reads its guest's cache file: a byte-identical
    // copy decoded from the same master image the boot used.
    if let Some(bytes) = cache_images.get(&spec.benchmark.profile.workload_id) {
        let copy = SharedClassCache::from_bytes(bytes).expect("cache image decodes");
        cfg = cfg.with_shared_cache(copy);
    }
    slot.java = Some(JavaVm::launch(
        mm,
        &mut g.os,
        cfg,
        spec.benchmark.profile.clone(),
        at,
    ));
}

/// Advances a guest's kernel background churn from wherever it last ran
/// to `at`, in one batched call.
fn catch_up_kernel(host: &mut KvmHost, slot: &mut GuestSlot, guest: usize, at: Tick) {
    let ticks = at.0.saturating_sub(slot.churned_to);
    if ticks == 0 {
        return;
    }
    let (mm, g) = host.mm_and_guest_mut(guest);
    g.os.tick_many(mm, at, ticks as u32);
    slot.churned_to = at.0;
}

/// The cross-layer conservation audit over a traffic-run world, where
/// drained guests have no JVM process.
fn audit_traffic(host: &KvmHost, slots: &[GuestSlot], scanner: &KsmScanner) {
    let views: Vec<GuestView<'_>> = host
        .guests()
        .iter()
        .zip(slots)
        .map(|(g, slot)| {
            let pids = slot.java.as_ref().map(|j| j.pid()).into_iter().collect();
            GuestView::new(&g.name, &g.os, pids)
        })
        .collect();
    let world = audit::World {
        mm: host.mm(),
        guests: views,
        scanner: Some(scanner),
    };
    if let Err(violation) = audit::check_world(&world) {
        panic!("memory-accounting audit failed under traffic: {violation}");
    }
}

/// Sharing stability over the second half of the samples: how little
/// `pages_sharing` moved between consecutive samples once the fleet
/// warmed up, as `1 − mean |Δ| / mean level`, clamped to `[0, 1]`.
fn stability(samples: &[TrafficSample]) -> f64 {
    let tail = &samples[samples.len() / 2..];
    if tail.len() < 2 {
        return 1.0;
    }
    let mean = tail.iter().map(|s| s.pages_sharing as f64).sum::<f64>() / tail.len() as f64;
    if mean <= 0.0 {
        return 1.0;
    }
    let mean_delta = tail
        .windows(2)
        .map(|w| (w[1].pages_sharing as f64 - w[0].pages_sharing as f64).abs())
        .sum::<f64>()
        / (tail.len() - 1) as f64;
    (1.0 - mean_delta / mean).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, seconds: u64) -> ExperimentConfig {
        ExperimentConfig::tiny_test(n, true).with_duration_seconds(seconds)
    }

    #[test]
    fn constant_traffic_serves_most_of_the_offered_load() {
        let report = Experiment::run_traffic(&cfg(2, 60), &Scenario::constant()).unwrap();
        assert!(report.offered > 0);
        assert!(report.served > 0);
        assert!(
            report.served as f64 >= 0.5 * report.offered as f64,
            "served {} of {}",
            report.served,
            report.offered
        );
        assert_eq!(report.offered, report.served + report.dropped);
        assert!(report.ksm.pages_sharing > 0);
        assert_eq!(report.samples.len(), 6);
    }

    #[test]
    fn traffic_runs_are_deterministic_and_thread_independent() {
        let base = cfg(2, 60);
        let scenario = Scenario::flash_crowd(60);
        let a = Experiment::run_traffic(&base, &scenario).unwrap();
        let b = Experiment::run_traffic(&base, &scenario).unwrap();
        assert_eq!(a, b);
        let threaded = Experiment::run_traffic(&base.clone().with_threads(4), &scenario).unwrap();
        assert_eq!(a.render(), threaded.render());
        assert_eq!(a, threaded);
    }

    #[test]
    fn thp_traffic_reports_huge_memory_and_stays_deterministic() {
        use crate::KsmSchedule;
        use ksm::KsmParams;
        use paging::ThpPolicy;
        // KSM off, so the collapsed blocks survive to the final report.
        let no_ksm = KsmSchedule {
            warmup: KsmParams::new(0, 100),
            steady: KsmParams::new(0, 100),
            warmup_seconds: 0,
        };
        let config = cfg(2, 60)
            .with_ksm(no_ksm)
            .with_thp(ThpPolicy::Always, ThpPolicy::Always);
        let a = Experiment::run_traffic(&config, &Scenario::constant()).unwrap();
        let threaded =
            Experiment::run_traffic(&config.clone().with_threads(4), &Scenario::constant())
                .unwrap();
        assert_eq!(a, threaded);
        assert!(a.huge_mib > 0.0, "huge {}", a.huge_mib);
        assert!(a.render().contains("thp huge"));
        // The non-THP render carries no THP line at all.
        let plain = Experiment::run_traffic(&cfg(2, 60), &Scenario::constant()).unwrap();
        assert_eq!(plain.huge_mib, 0.0);
        assert!(!plain.render().contains("thp"));
    }

    #[test]
    fn rolling_deploy_restarts_and_recovers_sharing() {
        let scenario = Scenario::rolling_deploy(90, 3);
        let report = Experiment::run_traffic(&cfg(3, 90), &scenario).unwrap();
        assert_eq!(report.restarts, 3);
        assert!(
            report.ksm.pages_sharing > 0,
            "sharing re-merged after waves"
        );
    }

    #[test]
    fn autoscale_changes_the_active_fleet() {
        let scenario = Scenario::autoscale(90, 4);
        let report = Experiment::run_traffic(&cfg(4, 90), &scenario).unwrap();
        assert!(report.scale_downs > 0);
        assert!(report.scale_ups > 0);
        let active: Vec<usize> = report.samples.iter().map(|s| s.active_guests).collect();
        assert!(
            active.iter().any(|&a| a < 4),
            "active never dipped: {active:?}"
        );
    }

    #[test]
    fn noisy_neighbor_serves_with_scaled_cost() {
        let report = Experiment::run_traffic(&cfg(2, 60), &Scenario::noisy_neighbor()).unwrap();
        assert!(report.served > 0);
    }

    #[test]
    fn invalid_configs_yield_typed_errors() {
        let mut empty = cfg(2, 60);
        empty.guests.clear();
        assert_eq!(
            Experiment::run_traffic(&empty, &Scenario::constant()).unwrap_err(),
            Error::NoGuests
        );
        let zero = cfg(2, 0);
        assert_eq!(
            Experiment::run_traffic(&zero, &Scenario::constant()).unwrap_err(),
            Error::ZeroDuration
        );
    }

    #[test]
    fn report_renders_golden_shaped_text() {
        let report = Experiment::run_traffic(&cfg(1, 30), &Scenario::constant()).unwrap();
        let text = report.render();
        assert!(text.starts_with("traffic constant | 1 guests | 30 s\n"));
        assert!(text.contains("sharing stability"));
        assert!(text.lines().count() >= 7, "got:\n{text}");
    }
}
