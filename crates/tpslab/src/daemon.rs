//! `tpsd`: the persistent fleet-monitoring daemon (DESIGN.md §13).
//!
//! The paper's headline signals — shared MiB, merge rates, over-commit
//! throughput — are what a production fleet operator watches
//! continuously. [`Daemon`] turns the simulator into that monitoring
//! service: a **ticker thread** owns the ticking world (the [`HostMm`]
//! stack is deliberately not `Sync`, so all mutation stays on one
//! thread) and, once per simulated second, publishes a fully rendered
//! [`ServedState`] — Prometheus-style metrics text, per-guest
//! attribution JSON, a `diagnose_misses` breakdown and a `top`-style
//! fleet table — behind an `Arc<RwLock>`. Query threads (one per
//! accepted connection on a local socket) answer from that published
//! state, so queries are served **from cached segments while the world
//! keeps mutating** and never block the ticker.
//!
//! Attribution stays warm across epochs: one [`SnapshotEngine`] lives
//! for the daemon's lifetime, so each publish re-walks only the address
//! spaces whose region generations moved since the previous second
//! (and none at all on an idle world, via the epoch short-circuit).
//!
//! Determinism contract: watching a world never mutates it. The ticker
//! drives exactly [`Experiment::build_world`]'s loop (or
//! [`Experiment::run_traffic`]'s under a scenario), sharing gauges are
//! refreshed with the read-only [`ksm::KsmScanner::count_sharing`], and
//! the attribution snapshot is pure — so the daemon's world at
//! simulated second `s` is byte-identical to an unmonitored run of
//! duration `s`, which is what `tests/telemetry.rs` checks against the
//! `collect_naive` oracle.
//!
//! Endpoints (HTTP/1.0, text or JSON, one request per connection):
//!
//! | path                    | payload                                       |
//! |-------------------------|-----------------------------------------------|
//! | `/metrics`              | full exposition (deterministic + wall series) |
//! | `/metrics/deterministic`| the golden-safe simulated-state section only  |
//! | `/guest/<i>`            | per-guest attribution JSON                    |
//! | `/fleet`                | fleet rollup JSON (all guests, miss classes)  |
//! | `/misses`               | `diagnose_misses` miss-class JSON             |
//! | `/top`                  | rendered fleet table (what `tps top` shows)   |
//! | `/healthz`              | readiness + epoch (404 until first publish)   |
//! | `/shutdown`             | stop ticking and serving, then exit           |
//!
//! [`HostMm`]: paging::HostMm
//! [`Experiment::build_world`]: crate::Experiment::build_world
//! [`Experiment::run_traffic`]: crate::Experiment::run_traffic

use crate::run::TickWorld;
use crate::telemetry;
use crate::traffic_run::TrafficWorld;
use crate::{Error, ExperimentConfig};
use analysis::{BreakdownReport, MergeMissReport, SnapshotEngine};
use hypervisor::KvmHost;
use ksm::KsmScanner;
use mem::Tick;
use obs::{MetricClass, MetricsRegistry};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use traffic::Scenario;

/// How the daemon runs a world and serves it.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// The experiment to tick. `duration_seconds` bounds the simulated
    /// run; after it the world idles but the daemon keeps serving the
    /// final epoch until `/shutdown`.
    pub config: ExperimentConfig,
    /// Drive the fleet with this traffic scenario instead of the
    /// tick-scripted workload.
    pub scenario: Option<Scenario>,
    /// Bind address; use port 0 for an ephemeral port (the bound
    /// address is available from [`Daemon::addr`]).
    pub addr: String,
    /// Wall-clock milliseconds to sleep between published epochs, so a
    /// live `tps top` is watchable. Zero ticks flat out.
    pub throttle_ms: u64,
}

impl DaemonConfig {
    /// A daemon on an ephemeral localhost port, no throttle.
    #[must_use]
    pub fn new(config: ExperimentConfig) -> DaemonConfig {
        DaemonConfig {
            config,
            scenario: None,
            addr: "127.0.0.1:0".to_string(),
            throttle_ms: 0,
        }
    }
}

/// Everything a query can be answered from, rendered once per published
/// epoch by the ticker thread. Immutable after publication — query
/// threads clone the `Arc`, never the strings.
struct ServedState {
    /// Simulated seconds this state describes.
    epoch_seconds: u64,
    /// True while the world is still ticking toward its duration.
    running: bool,
    /// Full Prometheus-style exposition (deterministic + wall).
    metrics: String,
    /// The deterministic section alone (golden-safe).
    metrics_deterministic: String,
    /// Per-guest attribution JSON, indexed by guest.
    guests: Vec<String>,
    /// Fleet rollup JSON.
    fleet: String,
    /// Miss-class breakdown JSON.
    misses: String,
    /// Rendered fleet table.
    top: String,
}

/// State shared between the ticker, the acceptor and query threads.
struct Shared {
    state: RwLock<Arc<ServedState>>,
    stop: AtomicBool,
    /// Queries answered so far (wall-clock series in the exposition).
    queries: AtomicU64,
}

/// A running `tpsd` instance. Dropping the handle does **not** stop the
/// daemon; call [`shutdown`](Self::shutdown) or hit `/shutdown`.
pub struct Daemon {
    addr: SocketAddr,
    shared: Arc<Shared>,
    ticker: Option<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Boots the world, binds the socket and starts the ticker and
    /// acceptor threads. Returns as soon as the socket is bound — the
    /// first epoch is published after the first simulated second.
    ///
    /// # Errors
    ///
    /// Returns a typed [`Error`] when the experiment configuration is
    /// invalid or the address cannot be bound.
    pub fn spawn(cfg: DaemonConfig) -> Result<Daemon, Error> {
        cfg.config.validate()?;
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| Error::Daemon(format!("bind {}: {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::Daemon(format!("local_addr: {e}")))?;

        let boot = ServedState {
            epoch_seconds: 0,
            running: true,
            metrics: String::new(),
            metrics_deterministic: String::new(),
            guests: Vec::new(),
            fleet: "{\"epoch_seconds\":0,\"booting\":true}\n".to_string(),
            misses: "{\"epoch_seconds\":0,\"booting\":true}\n".to_string(),
            top: "tpsd: booting\n".to_string(),
        };
        let shared = Arc::new(Shared {
            state: RwLock::new(Arc::new(boot)),
            stop: AtomicBool::new(false),
            queries: AtomicU64::new(0),
        });

        let ticker = {
            let shared = Arc::clone(&shared);
            let cfg = cfg.clone();
            std::thread::Builder::new()
                .name("tpsd-ticker".to_string())
                .spawn(move || run_ticker(&cfg, &shared))
                .map_err(|e| Error::Daemon(format!("spawn ticker: {e}")))?
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tpsd-accept".to_string())
                .spawn(move || run_acceptor(&listener, &shared))
                .map_err(|e| Error::Daemon(format!("spawn acceptor: {e}")))?
        };

        Ok(Daemon {
            addr,
            shared,
            ticker: Some(ticker),
            acceptor: Some(acceptor),
        })
    }

    /// The bound socket address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Simulated seconds of the most recently published epoch.
    #[must_use]
    pub fn epoch_seconds(&self) -> u64 {
        self.shared.state.read().expect("state lock").epoch_seconds
    }

    /// Answers `path` directly from the published state, exactly as the
    /// socket handler would — the cached-query path without the
    /// transport. `None` for unknown paths. Used by `bench telemetry`
    /// to time the query path in isolation.
    #[must_use]
    pub fn state_answer(&self, path: &str) -> Option<String> {
        let state = Arc::clone(&self.shared.state.read().expect("state lock"));
        answer(&state, path).map(|(_, body)| body)
    }

    /// Signals the daemon to stop and wakes the acceptor.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the (blocking) accept call with a no-op connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// Waits for the ticker and acceptor to exit. Call after
    /// [`shutdown`](Self::shutdown) (or after a client hit `/shutdown`).
    pub fn join(&mut self) {
        if let Some(h) = self.ticker.take() {
            let _ = h.join();
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// The world driver: both modes expose the same per-tick step. The
/// worlds are boxed — each carries hundreds of bytes of inline state
/// (the traffic world also drags its whole event queue along).
enum Driver {
    Tick(Box<TickWorld>),
    Traffic(Box<TrafficWorld>),
}

impl Driver {
    fn step(&mut self, t: u64) {
        match self {
            Driver::Tick(w) => w.step(t),
            Driver::Traffic(w) => w.step(t),
        }
    }

    fn host(&self) -> &KvmHost {
        match self {
            Driver::Tick(w) => &w.host,
            Driver::Traffic(w) => &w.host,
        }
    }

    fn scanner(&self) -> &KsmScanner {
        match self {
            Driver::Tick(w) => &w.scanner,
            Driver::Traffic(w) => &w.scanner,
        }
    }
}

/// The ticker thread: owns the world, the warm engine and the wall-
/// clock series; ticks simulated seconds and publishes rendered state.
fn run_ticker(cfg: &DaemonConfig, shared: &Shared) {
    let mut driver = match &cfg.scenario {
        Some(scenario) => match TrafficWorld::new(&cfg.config, scenario) {
            Ok(w) => Driver::Traffic(Box::new(w)),
            Err(e) => {
                publish_error(shared, &e);
                return;
            }
        },
        None => Driver::Tick(Box::new(TickWorld::new(&cfg.config))),
    };
    let mut engine = SnapshotEngine::new(cfg.config.threads);
    // Wall-clock series survive across publishes (the deterministic
    // registry is rebuilt from layer counters each time).
    let mut wall = MetricsRegistry::new();
    let mut prev_merges = 0u64;
    let ticks_per_second = u64::from(mem::TICKS_PER_SECOND as u32);
    let duration = cfg.config.duration_seconds;

    let mut second = 0u64;
    while !shared.stop.load(Ordering::SeqCst) {
        if second < duration {
            second += 1;
            for t in (second - 1) * ticks_per_second + 1..=second * ticks_per_second {
                driver.step(t);
            }
            let state = publish(
                &driver,
                &mut engine,
                &mut wall,
                shared,
                second,
                second < duration,
                &mut prev_merges,
            );
            *shared.state.write().expect("state lock") = Arc::new(state);
            if cfg.throttle_ms > 0 {
                std::thread::sleep(Duration::from_millis(cfg.throttle_ms));
            }
        } else {
            // The run is over: the world idles, the engine's epoch
            // short-circuit makes republishing cheap, and only the
            // wall-clock series (query counts) still move.
            std::thread::sleep(Duration::from_millis(100));
            let state = publish(
                &driver,
                &mut engine,
                &mut wall,
                shared,
                second,
                false,
                &mut prev_merges,
            );
            *shared.state.write().expect("state lock") = Arc::new(state);
        }
    }
}

/// Publishes one epoch: snapshot, breakdown, misses, metrics, table.
fn publish(
    driver: &Driver,
    engine: &mut SnapshotEngine,
    wall: &mut MetricsRegistry,
    shared: &Shared,
    second: u64,
    running: bool,
    prev_merges: &mut u64,
) -> ServedState {
    let host = driver.host();
    let scanner = driver.scanner();
    let now = Tick::from_seconds(second as f64);

    // The warm attribution walk: only spaces whose generations moved
    // since the previous second are re-walked. Timed into the separated
    // wall-clock histogram.
    let walk_started = Instant::now();
    let views = match driver {
        Driver::Tick(w) => w.views(),
        Driver::Traffic(w) => w.views(),
    };
    let snapshot = engine.snapshot(host.mm(), &views);
    drop(views);
    wall.observe(
        "engine_walk_latency_ns",
        "Wall-clock latency of the per-epoch attribution walk (non-deterministic).",
        &[],
        MetricClass::Wall,
        walk_started.elapsed().as_nanos() as u64,
    );
    let breakdown = snapshot.breakdown();

    let misses = analysis::diagnose_misses(
        host.mm(),
        scanner.params().max_page_sharing(),
        scanner.volatility_horizon(),
        &host.mm().tracer().broken_mappings(),
    );

    // Deterministic registry, rebuilt from layer counters; wall-clock
    // series merged behind it.
    let mut reg = telemetry::world_registry(host, scanner, engine, now);
    if let Driver::Traffic(w) = driver {
        w.report.record_metrics(&mut reg);
        // Step-phase wall clocks (DESIGN.md §14): cumulative in the
        // world, exported as per-publish increments on the persistent
        // wall registry so the series survives epoch rebuilds.
        const PHASE_HELP: &str =
            "Wall-clock nanoseconds the traffic step spent in this phase (non-deterministic).";
        for (name, total) in [
            ("traffic_drain_wall_ns_total", w.wall.drain_ns),
            ("traffic_plan_wall_ns_total", w.wall.plan_ns),
            ("traffic_commit_wall_ns_total", w.wall.commit_ns),
            ("traffic_scan_wall_ns_total", w.wall.scan_ns),
        ] {
            let prev = wall.counter_value(name, &[]).unwrap_or(0);
            wall.counter_class(
                name,
                PHASE_HELP,
                &[],
                MetricClass::Wall,
                total.saturating_sub(prev),
            );
        }
    }
    wall.counter_class(
        "daemon_queries_total",
        "Queries answered by this daemon so far (non-deterministic).",
        &[],
        MetricClass::Wall,
        shared
            .queries
            .load(Ordering::Relaxed)
            .saturating_sub(wall.counter_value("daemon_queries_total", &[]).unwrap_or(0)),
    );
    reg.merge(wall);
    let metrics = reg.render();
    let metrics_deterministic = reg.render_deterministic();

    // Fleet-wide merge rate over the published interval.
    let merges = scanner.stats().merges;
    let merge_rate = merges.saturating_sub(*prev_merges) as f64;
    *prev_merges = merges;

    let (shared_pages, sharing_pages) = scanner.count_sharing(host.mm());
    let per_guest_traffic = match driver {
        Driver::Traffic(w) => Some(w.report.per_guest.as_slice()),
        Driver::Tick(_) => None,
    };

    let guests = render_guests(host, &breakdown, second, per_guest_traffic);
    let fleet = render_fleet(
        host,
        &breakdown,
        &misses,
        second,
        running,
        merge_rate,
        shared_pages,
        sharing_pages,
        per_guest_traffic,
    );
    let top = render_top(
        host,
        &breakdown,
        &misses,
        second,
        merge_rate,
        per_guest_traffic,
    );
    let mut misses_json = format!("{{\"epoch_seconds\":{second},");
    misses_json.push_str(misses.to_json().trim_start_matches('{'));
    if !misses_json.ends_with('\n') {
        misses_json.push('\n');
    }

    ServedState {
        epoch_seconds: second,
        running,
        metrics,
        metrics_deterministic,
        guests,
        fleet,
        misses: misses_json,
        top,
    }
}

fn publish_error(shared: &Shared, e: &Error) {
    let msg = format!("tpsd: {e}\n");
    let state = ServedState {
        epoch_seconds: 0,
        running: false,
        metrics: msg.clone(),
        metrics_deterministic: msg.clone(),
        guests: Vec::new(),
        fleet: msg.clone(),
        misses: msg.clone(),
        top: msg,
    };
    *shared.state.write().expect("state lock") = Arc::new(state);
    shared.stop.store(true, Ordering::SeqCst);
}

/// Per-guest attribution JSON ("what does guest 17's Java heap cost
/// right now?"): the guest rollup plus, when a JVM is live, its
/// Table IV category breakdown. Field order is fixed — this is the
/// canonical shape of the daemon's `/guest/<i>` responses, exported so
/// oracle tests can rebuild the exact text from an unmonitored world
/// (e.g. via `MemorySnapshot::collect_naive`) and compare bytes.
#[must_use]
pub fn render_guests(
    host: &KvmHost,
    breakdown: &BreakdownReport,
    second: u64,
    traffic: Option<&[crate::GuestTraffic]>,
) -> Vec<String> {
    breakdown
        .guests
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let mut out = String::with_capacity(512);
            let _ = write!(
                out,
                "{{\"epoch_seconds\":{second},\"guest\":{i},\"name\":\"{}\",\
                 \"resident_mib\":{:.3},\"owned_mib\":{:.3},\"java_owned_mib\":{:.3},\
                 \"other_owned_mib\":{:.3},\"kernel_owned_mib\":{:.3},\
                 \"vm_overhead_owned_mib\":{:.3},\"tps_saving_mib\":{:.3},\
                 \"huge_mib\":{:.3}",
                g.name,
                g.resident_mib,
                g.owned_total_mib(),
                g.java_owned_mib,
                g.other_owned_mib,
                g.kernel_owned_mib,
                g.vm_overhead_owned_mib,
                g.tps_saving_mib(),
                mem::pages_to_mib(host.guest_huge_pages(i)),
            );
            if let Some(per_guest) = traffic {
                let t = per_guest.get(i).copied().unwrap_or_default();
                let _ = write!(
                    out,
                    ",\"offered\":{},\"served\":{},\"shed\":{}",
                    t.offered, t.served, t.dropped
                );
            }
            match breakdown.javas.iter().find(|j| j.guest == i as u32) {
                Some(java) => {
                    let _ = write!(out, ",\"java\":{{\"pid\":{},\"categories\":{{", java.pid.0);
                    for (k, (category, usage)) in java.categories.iter().enumerate() {
                        if k > 0 {
                            out.push(',');
                        }
                        let _ = write!(
                            out,
                            "\"{category:?}\":{{\"resident_mib\":{:.3},\"owned_mib\":{:.3},\
                             \"saved_mib\":{:.3}}}",
                            usage.resident_mib,
                            usage.owned_mib,
                            usage.saved_mib(),
                        );
                    }
                    let _ = writeln!(
                        out,
                        "}},\"resident_total_mib\":{:.3},\"owned_total_mib\":{:.3},\
                         \"saved_total_mib\":{:.3}}}}}",
                        java.resident_total_mib(),
                        java.owned_total_mib(),
                        java.saved_total_mib(),
                    );
                }
                None => out.push_str(",\"java\":null}\n"),
            }
            out
        })
        .collect()
}

/// Fleet rollup JSON: host totals, sharing counters, miss classes and
/// one row per guest.
#[allow(clippy::too_many_arguments)]
fn render_fleet(
    host: &KvmHost,
    breakdown: &BreakdownReport,
    misses: &MergeMissReport,
    second: u64,
    running: bool,
    merge_rate: f64,
    shared_pages: u64,
    sharing_pages: u64,
    traffic: Option<&[crate::GuestTraffic]>,
) -> String {
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"epoch_seconds\":{second},\"running\":{running},\
         \"mode\":\"{}\",\"guests\":{},\"resident_mib\":{:.3},\"huge_mib\":{:.3},\
         \"overcommit_mib\":{:.3},\"pages_shared\":{shared_pages},\
         \"pages_sharing\":{sharing_pages},\"merge_rate_per_s\":{merge_rate},\
         \"misses\":",
        if traffic.is_some() { "traffic" } else { "tick" },
        breakdown.guests.len(),
        host.resident_mib(),
        host.huge_mib(),
        host.overcommit_mib(),
    );
    out.push_str(misses.to_json().trim_end());
    out.push_str(",\"fleet\":[");
    for (i, g) in breakdown.guests.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"guest\":{i},\"name\":\"{}\",\"resident_mib\":{:.3},\
             \"shared_mib\":{:.3},\"huge_mib\":{:.3}",
            g.name,
            g.resident_mib,
            g.tps_saving_mib(),
            mem::pages_to_mib(host.guest_huge_pages(i)),
        );
        if let Some(per_guest) = traffic {
            let t = per_guest.get(i).copied().unwrap_or_default();
            let _ = write!(out, ",\"served\":{},\"shed\":{}", t.served, t.dropped);
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// The `top`-style fleet table `tps top` polls and displays.
fn render_top(
    host: &KvmHost,
    breakdown: &BreakdownReport,
    misses: &MergeMissReport,
    second: u64,
    merge_rate: f64,
    traffic: Option<&[crate::GuestTraffic]>,
) -> String {
    let mut out = String::with_capacity(1024);
    let total_shared: f64 = breakdown
        .guests
        .iter()
        .map(analysis::GuestBreakdown::tps_saving_mib)
        .sum();
    let _ = writeln!(
        out,
        "tpsd | epoch {second} s | {} guests | resident {:.1} MiB | shared {:.1} MiB | huge {:.1} MiB | merges {merge_rate:.0}/s",
        breakdown.guests.len(),
        host.resident_mib(),
        total_shared,
        host.huge_mib(),
    );
    let mut miss_line = String::from("misses:");
    for reason in analysis::MissReason::ALL {
        let _ = write!(miss_line, " {}={}", reason.label(), misses.missed(reason));
    }
    let _ = writeln!(out, "{miss_line}");
    if traffic.is_some() {
        let _ = writeln!(
            out,
            "{:>5} {:>8} {:>10} {:>9} {:>8} {:>10} {:>10} {:>8}",
            "guest", "name", "resident", "shared", "huge", "offered", "served", "shed"
        );
    } else {
        let _ = writeln!(
            out,
            "{:>5} {:>8} {:>10} {:>9} {:>8}",
            "guest", "name", "resident", "shared", "huge"
        );
    }
    for (i, g) in breakdown.guests.iter().enumerate() {
        let huge = mem::pages_to_mib(host.guest_huge_pages(i));
        match traffic.and_then(|t| t.get(i)) {
            Some(t) => {
                let _ = writeln!(
                    out,
                    "{i:>5} {:>8} {:>10.1} {:>9.1} {:>8.1} {:>10} {:>10} {:>8}",
                    g.name,
                    g.resident_mib,
                    g.tps_saving_mib(),
                    huge,
                    t.offered,
                    t.served,
                    t.dropped
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{i:>5} {:>8} {:>10.1} {:>9.1} {:>8.1}",
                    g.name,
                    g.resident_mib,
                    g.tps_saving_mib(),
                    huge
                );
            }
        }
    }
    out
}

/// Routes a request path to `(content type, body)` against a published
/// state. Shared by the socket handler and [`Daemon::state_answer`].
fn answer(state: &ServedState, path: &str) -> Option<(&'static str, String)> {
    match path {
        "/metrics" => Some(("text/plain; version=0.0.4", state.metrics.clone())),
        "/metrics/deterministic" => Some((
            "text/plain; version=0.0.4",
            state.metrics_deterministic.clone(),
        )),
        "/fleet" => Some(("application/json", state.fleet.clone())),
        "/misses" => Some(("application/json", state.misses.clone())),
        "/top" => Some(("text/plain", state.top.clone())),
        // Readiness, not liveness: 404 until the first epoch publishes,
        // so a wait-for-healthz loop guarantees every other endpoint
        // answers from fully rendered state.
        "/healthz" if state.epoch_seconds > 0 => Some((
            "text/plain",
            format!(
                "ok epoch={} running={}\n",
                state.epoch_seconds, state.running
            ),
        )),
        _ => {
            let idx: usize = path.strip_prefix("/guest/")?.parse().ok()?;
            state
                .guests
                .get(idx)
                .map(|g| ("application/json", g.clone()))
        }
    }
}

/// The accept loop: one handler thread per connection; `/shutdown`
/// flips the stop flag, and the self-connection from
/// [`Daemon::shutdown`] (or the handler itself) unblocks the accept.
fn run_acceptor(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let shared = Arc::clone(shared);
        let addr = listener.local_addr().ok();
        let _ = std::thread::Builder::new()
            .name("tpsd-query".to_string())
            .spawn(move || handle(stream, &shared, addr));
    }
}

/// Answers one HTTP/1.0 request from the published state.
fn handle(stream: TcpStream, shared: &Shared, addr: Option<SocketAddr>) {
    let mut reader = BufReader::new(&stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    let path = match request_line.split_whitespace().nth(1) {
        Some(p) => p.to_string(),
        None => return, // e.g. the shutdown wake-up connection
    };
    // Drain the (ignored) headers so the client can write them fully.
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => {}
            Err(_) => return,
        }
    }
    shared.queries.fetch_add(1, Ordering::Relaxed);

    let mut stream = stream;
    if path == "/shutdown" {
        shared.stop.store(true, Ordering::SeqCst);
        let _ = respond(&mut stream, 200, "text/plain", "shutting down\n");
        // Unblock the accept loop so the daemon exits promptly.
        if let Some(addr) = addr {
            let _ = TcpStream::connect(addr);
        }
        return;
    }
    let state = Arc::clone(&shared.state.read().expect("state lock"));
    match answer(&state, &path) {
        Some((content_type, body)) => {
            let _ = respond(&mut stream, 200, content_type, &body);
        }
        None => {
            let _ = respond(&mut stream, 404, "text/plain", "not found\n");
        }
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = if status == 200 { "OK" } else { "Not Found" };
    write!(
        stream,
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A minimal blocking HTTP/1.0 GET against a daemon, returning the
/// body. Used by `tps top`, the CI smoke job and the benches — no
/// external HTTP client needed.
///
/// # Errors
///
/// Returns [`Error::Daemon`] on connection or protocol failures.
pub fn http_get(addr: &str, path: &str) -> Result<String, Error> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| Error::Daemon(format!("connect {addr}: {e}")))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n")
        .map_err(|e| Error::Daemon(format!("send: {e}")))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| Error::Daemon(format!("read status: {e}")))?;
    if !status_line.contains("200") {
        return Err(Error::Daemon(format!("{path}: {}", status_line.trim_end())));
    }
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => {}
            Err(e) => return Err(Error::Daemon(format!("read headers: {e}"))),
        }
    }
    let mut body = String::new();
    std::io::Read::read_to_string(&mut reader, &mut body)
        .map_err(|e| Error::Daemon(format!("read body: {e}")))?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wait_for_epoch(daemon: &Daemon, at_least: u64) {
        let deadline = Instant::now() + Duration::from_secs(120);
        while daemon.epoch_seconds() < at_least {
            assert!(Instant::now() < deadline, "daemon never reached epoch");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn daemon_serves_metrics_guests_and_shuts_down() {
        let config = ExperimentConfig::tiny_test(2, true).with_duration_seconds(20);
        let mut daemon = Daemon::spawn(DaemonConfig::new(config)).unwrap();
        wait_for_epoch(&daemon, 5);
        let addr = daemon.addr().to_string();

        let health = http_get(&addr, "/healthz").unwrap();
        assert!(health.starts_with("ok epoch="), "got: {health}");
        let metrics = http_get(&addr, "/metrics").unwrap();
        assert!(metrics.contains("ksm_pages_sharing"), "got: {metrics}");
        assert!(metrics.contains("# --- non-deterministic"));
        let det = http_get(&addr, "/metrics/deterministic").unwrap();
        assert!(!det.contains("non-deterministic"));
        let g0 = http_get(&addr, "/guest/0").unwrap();
        assert!(g0.contains("\"guest\":0"), "got: {g0}");
        assert!(g0.contains("\"JavaHeap\""), "got: {g0}");
        let fleet = http_get(&addr, "/fleet").unwrap();
        assert!(fleet.contains("\"pages_sharing\""), "got: {fleet}");
        let misses = http_get(&addr, "/misses").unwrap();
        assert!(misses.contains("\"missed\""), "got: {misses}");
        let top = http_get(&addr, "/top").unwrap();
        assert!(top.starts_with("tpsd | epoch"), "got: {top}");
        assert!(http_get(&addr, "/guest/99").is_err());
        assert!(http_get(&addr, "/nope").is_err());

        assert!(http_get(&addr, "/shutdown").unwrap().contains("shutting"));
        daemon.join();
    }

    #[test]
    fn traffic_daemon_reports_per_guest_served() {
        let config = ExperimentConfig::tiny_test(2, true).with_duration_seconds(30);
        let mut cfg = DaemonConfig::new(config);
        cfg.scenario = Some(Scenario::constant());
        let mut daemon = Daemon::spawn(cfg).unwrap();
        wait_for_epoch(&daemon, 15);
        let addr = daemon.addr().to_string();
        let g0 = http_get(&addr, "/guest/0").unwrap();
        assert!(g0.contains("\"served\":"), "got: {g0}");
        let metrics = http_get(&addr, "/metrics").unwrap();
        assert!(
            metrics.contains("traffic_guest_served_total{guest=\"0\"}"),
            "got: {metrics}"
        );
        let top = http_get(&addr, "/top").unwrap();
        assert!(top.contains("offered"), "got: {top}");
        assert!(top.contains("served"), "got: {top}");
        assert!(
            metrics.contains("traffic_plan_wall_ns_total"),
            "got: {metrics}"
        );
        daemon.shutdown();
        daemon.join();
    }

    #[test]
    fn invalid_config_is_rejected_up_front() {
        let mut config = ExperimentConfig::tiny_test(1, false);
        config.guests.clear();
        let err = match Daemon::spawn(DaemonConfig::new(config)) {
            Err(e) => e,
            Ok(_) => panic!("empty fleet must be rejected"),
        };
        assert_eq!(err, Error::NoGuests);
    }
}
