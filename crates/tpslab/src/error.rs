//! Typed experiment errors.
//!
//! Invalid configurations used to die inside the run loop as panics or
//! `expect`s; every entry point now validates up front and returns an
//! [`Error`] the CLI renders as a one-line diagnostic instead of a
//! backtrace.

use std::fmt;

/// Why an experiment could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The configuration describes no guests at all.
    NoGuests,
    /// The configured run length is zero seconds.
    ZeroDuration,
    /// The guests' nominal memory exceeds the host's budget: past
    /// [`MAX_OVERCOMMIT`](crate::ExperimentConfig::MAX_OVERCOMMIT) ×
    /// usable RAM the throughput model collapses to noise.
    BudgetExceeded {
        /// Guests requested.
        guests: usize,
        /// Their summed nominal memory, MiB.
        nominal_mib: f64,
        /// The host's usable memory, MiB.
        usable_mib: f64,
        /// Largest guest count the budget admits (first-guest sizing).
        max_guests: usize,
    },
    /// No experiment preset has this name.
    UnknownPreset(String),
    /// No traffic scenario has this name.
    UnknownScenario(String),
    /// The monitoring daemon could not bind or serve its socket.
    Daemon(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoGuests => write!(f, "the configuration has no guests"),
            Error::ZeroDuration => write!(f, "the run duration is zero seconds"),
            Error::BudgetExceeded {
                guests,
                nominal_mib,
                usable_mib,
                max_guests,
            } => write!(
                f,
                "{guests} guests need {nominal_mib:.0} MiB nominal but the host's \
                 {usable_mib:.0} MiB usable caps the fleet at {max_guests} guests \
                 ({:.0}x over-commit)",
                crate::ExperimentConfig::MAX_OVERCOMMIT
            ),
            Error::UnknownPreset(name) => write!(
                f,
                "unknown preset {name:?} (expected scale32 | scale256 | scale1024)"
            ),
            Error::UnknownScenario(name) => write!(
                f,
                "unknown traffic scenario {name:?}; expected one of:\n{}",
                traffic::Scenario::describe_all().trim_end()
            ),
            Error::Daemon(what) => write!(f, "monitoring daemon: {what}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_one_line_diagnostics() {
        let e = Error::BudgetExceeded {
            guests: 99,
            nominal_mib: 9900.0,
            usable_mib: 1000.0,
            max_guests: 40,
        };
        let msg = e.to_string();
        assert!(msg.contains("99 guests"), "got: {msg}");
        assert!(msg.contains("caps the fleet at 40"), "got: {msg}");
        assert!(!msg.contains('\n'));

        assert!(Error::UnknownPreset("wat".into())
            .to_string()
            .contains("scale256"));
        assert!(Error::UnknownScenario("wat".into())
            .to_string()
            .contains("flash-crowd"));
    }
}
