//! The Fig. 6 PowerVM/AIX experiment.

use cds::{CacheBuilder, SharedClassCache};
use hypervisor::PowerVmHost;
use jvm::{ClassSet, JavaVm, JvmConfig};
use mem::{Fingerprint, Tick};
use oskernel::OsImage;
use workloads::Benchmark;

/// One bar pair from Fig. 6: physical memory just after starting WAS and
/// after PowerVM finished sharing pages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerVmFigure {
    /// Total LPAR memory before deduplication, MiB.
    pub before_mib: f64,
    /// Total after deduplication, MiB.
    pub after_mib: f64,
}

impl PowerVmFigure {
    /// Memory saved by sharing, MiB (424.4 with preloading vs. 243.4
    /// without, in the paper).
    #[must_use]
    pub fn saving_mib(&self) -> f64 {
        self.before_mib - self.after_mib
    }
}

/// The §V.B experiment: three AIX LPARs running WAS + DayTrader on
/// PowerVM, with and without class preloading.
#[derive(Debug, Clone)]
pub struct PowerVmExperiment {
    /// Number of LPARs (three in the paper).
    pub lpars: usize,
    /// LPAR memory, MiB (3.5 GB in the paper).
    pub lpar_mem_mib: f64,
    /// The benchmark (DayTrader with a 1 GB heap and 25 client threads).
    pub benchmark: Benchmark,
    /// Guest image (AIX 6.1).
    pub image: OsImage,
    /// Seconds of WAS start-up simulated before measuring.
    pub startup_seconds: u64,
    /// Master seed.
    pub seed: u64,
}

impl PowerVmExperiment {
    /// The paper's configuration (rightmost columns of Tables I–III),
    /// scaled by `scale`.
    #[must_use]
    pub fn paper(scale: f64) -> PowerVmExperiment {
        PowerVmExperiment {
            lpars: 3,
            lpar_mem_mib: 3584.0 / scale,
            benchmark: workloads::daytrader_power().scaled(scale),
            image: OsImage::aix61().scaled(scale),
            startup_seconds: 420,
            seed: 0x0009_03e4,
        }
    }

    /// A miniature configuration for tests.
    #[must_use]
    pub fn tiny_test() -> PowerVmExperiment {
        PowerVmExperiment {
            lpars: 3,
            lpar_mem_mib: 96.0,
            benchmark: Benchmark {
                profile: jvm::AppProfile::tiny_test(),
                drive: workloads::DriveModel::closed_loop(4, 1.0),
                cache_mib: 4.0,
            },
            image: OsImage::tiny_test(),
            startup_seconds: 60,
            seed: 11,
        }
    }

    /// Runs the experiment once. `preload` selects whether the shared
    /// class cache file is present on every LPAR.
    #[must_use]
    pub fn run(&self, preload: bool) -> PowerVmFigure {
        let mut host = PowerVmHost::new();
        let profile = &self.benchmark.profile;
        let cache = preload.then(|| {
            let classes = ClassSet::for_profile(profile);
            let mut builder = CacheBuilder::new(profile.name.clone(), self.benchmark.cache_mib);
            for class in classes.cacheable() {
                builder.add(class.token, class.ro_bytes);
            }
            builder.finish()
        });

        let mut javas: Vec<JavaVm> = Vec::new();
        for i in 0..self.lpars {
            let salt = Fingerprint::of(&[self.seed, 0x19a4, i as u64]).as_u128() as u64;
            let idx = host.create_lpar(
                format!("lpar{}", i + 1),
                self.lpar_mem_mib,
                &self.image,
                salt,
                Tick::ZERO,
            );
            let mut cfg = JvmConfig::new(0x0659, salt.rotate_left(13));
            if let Some(c) = &cache {
                let copy = SharedClassCache::from_bytes(&c.to_bytes()).expect("cache copy");
                cfg = cfg.with_shared_cache(copy);
            }
            let (mm, lpar) = host.mm_and_lpar_mut(idx);
            javas.push(JavaVm::launch(
                mm,
                &mut lpar.os,
                cfg,
                profile.clone(),
                Tick::ZERO,
            ));
        }

        // Start WAS everywhere; PowerVM has not shared anything yet.
        let end = Tick::from_seconds(self.startup_seconds as f64);
        for t in 1..=end.0 {
            let now = Tick(t);
            for (i, java) in javas.iter_mut().enumerate() {
                let (mm, lpar) = host.mm_and_lpar_mut(i);
                lpar.os.tick(mm, now);
                java.tick(mm, &mut lpar.os, now);
            }
        }
        let before_mib = host.resident_mib();
        host.dedupe(end.next());
        let after_mib = host.resident_mib();
        PowerVmFigure {
            before_mib,
            after_mib,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preloading_increases_powervm_saving() {
        let exp = PowerVmExperiment::tiny_test();
        let without = exp.run(false);
        let with = exp.run(true);
        assert!(without.saving_mib() > 0.0, "kernel pages always share");
        assert!(
            with.saving_mib() > without.saving_mib(),
            "preload {} vs baseline {}",
            with.saving_mib(),
            without.saving_mib()
        );
        // Before-sizes are comparable (the cache itself is shared work,
        // not extra footprint of similar magnitude).
        assert!((with.before_mib - without.before_mib).abs() < 0.25 * without.before_mib);
    }
}
