//! Fleet telemetry collection (DESIGN.md §13).
//!
//! Assembles one [`obs::MetricsRegistry`] scrape from a live world's
//! deterministic layer counters: the hypervisor/paging stack
//! ([`KvmHost::record_metrics`]), the KSM scanner
//! ([`ksm::KsmScanner::record_metrics`]), the attribution engine
//! ([`analysis::SnapshotEngine::record_metrics`]) and — under traffic —
//! the per-guest request tallies
//! ([`TrafficReport::record_metrics`](crate::TrafficReport::record_metrics)).
//!
//! The registry is rebuilt from scratch at every collection, so each
//! cumulative layer counter lands in the exposition exactly once and
//! the rendered deterministic section is a pure function of simulated
//! state — byte-identical at any `--threads`. Wall-clock series (wake
//! phase nanos, walk latency) ride along in the separated
//! [`obs::MetricClass::Wall`] section.

use crate::run::TickWorld;
use crate::ExperimentConfig;
use analysis::SnapshotEngine;
use hypervisor::KvmHost;
use ksm::KsmScanner;
use mem::Tick;
use obs::MetricsRegistry;

/// Builds the deterministic scrape of a world at simulated tick `now`.
///
/// `scanner` stats may lag ground truth between recounts, so the
/// `ksm_pages_shared` / `ksm_pages_sharing` gauges are refreshed with a
/// read-only [`KsmScanner::count_sharing`] — watching a world never
/// mutates it.
#[must_use]
pub fn world_registry(
    host: &KvmHost,
    scanner: &KsmScanner,
    engine: &SnapshotEngine,
    now: Tick,
) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    reg.gauge(
        "sim_seconds",
        "Simulated seconds since the start of the run.",
        &[],
        now.as_seconds(),
    );
    reg.counter(
        "sim_ticks_total",
        "Simulated ticks since the start of the run.",
        &[],
        now.0,
    );
    host.record_metrics(&mut reg);
    scanner.record_metrics(&mut reg);
    let (shared, sharing) = scanner.count_sharing(host.mm());
    reg.gauge(
        "ksm_pages_shared",
        "Stable-tree frames: distinct shared pages kept in memory.",
        &[],
        shared as f64,
    );
    reg.gauge(
        "ksm_pages_sharing",
        "PTEs pointing at stable frames beyond the first (copies elided).",
        &[],
        sharing as f64,
    );
    engine.record_metrics(&mut reg);
    reg
}

/// One deterministic scrape of a converged world: runs `config` to its
/// configured duration (exactly [`Experiment::build_world`]'s loop),
/// takes one warm attribution snapshot, and renders the
/// [`obs::MetricClass::Sim`] section of the registry.
///
/// This is the text pinned by `tests/golden/telemetry.txt` and asserted
/// byte-identical across thread counts by `tests/telemetry.rs`.
///
/// [`Experiment::build_world`]: crate::Experiment::build_world
#[must_use]
pub fn golden_scrape(config: &ExperimentConfig) -> String {
    let mut world = TickWorld::new(config);
    let end = Tick::from_seconds(config.duration_seconds as f64);
    for t in 1..=end.0 {
        world.step(t);
    }
    let mut engine = SnapshotEngine::new(config.threads);
    let views = world.views();
    let _ = engine.snapshot(world.host.mm(), &views);
    drop(views);
    world_registry(&world.host, &world.scanner, &engine, end).render_deterministic()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrape_covers_every_layer_and_stays_deterministic() {
        let config = ExperimentConfig::tiny_test(2, true).with_duration_seconds(30);
        let a = golden_scrape(&config);
        let b = golden_scrape(&config.clone().with_threads(4));
        assert_eq!(a, b, "scrape must be byte-identical at any thread count");
        for series in [
            "sim_seconds 30",
            "ksm_pages_sharing",
            "ksm_wake_work_total{phase=\"plan_pages\"}",
            "paging_cow_breaks_total",
            "host_resident_mib",
            "engine_snapshots_total 1",
            "obs_trace_events_dropped_total 0",
        ] {
            assert!(a.contains(series), "missing {series} in:\n{a}");
        }
        // The deterministic section never carries wall-clock series.
        assert!(!a.contains("nanos"));
    }
}
