//! Over-commit throughput model (Figs. 7–8).

/// Peak relative throughput gain when *all* resident memory is mapped
/// through 2 MiB translations: the TLB-reach term. Calibrated to the
/// low-single-digit percent improvements measured for THP on
/// TLB-sensitive server workloads — large enough that trading huge
/// mappings for KSM sharing is a real trade-off, small enough that it
/// never rivals the over-commit cliff.
const TLB_REACH_GAIN: f64 = 0.12;

/// Translates memory over-commit into a request-service slowdown factor.
///
/// The model distinguishes two regimes, matching the qualitative story in
/// §V.C:
///
/// 1. **Cold paging** — the host swaps pages nobody touches (clean page
///    cache, quiet heap tails). Throughput dips mildly and linearly.
/// 2. **Hot paging (thrashing)** — the swap victims are in the guests'
///    working sets, so requests take page faults against disk; the
///    penalty grows quadratically with the hot deficit and throughput
///    collapses, which is exactly the cliff between 7 and 8 guest VMs in
///    Fig. 7.
///
/// # Example
///
/// ```
/// use hypervisor::PagingModel;
///
/// let model = PagingModel::default();
/// let healthy = model.slowdown(5000.0, 6144.0, 420.0, 1000.0);
/// assert_eq!(healthy, 1.0);
/// let thrashing = model.slowdown(8000.0, 6144.0, 420.0, 1000.0);
/// assert!(thrashing < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PagingModel {
    /// Maximum relative dip while only cold pages are swapped.
    pub cold_penalty: f64,
    /// Quadratic coefficient of the thrashing collapse, applied to the
    /// hot deficit as a fraction of usable RAM (scale-invariant).
    pub thrash_coeff: f64,
}

impl Default for PagingModel {
    /// Calibrated to Fig. 7: the default WAS configuration drops to
    /// 17.2/148 ≈ 0.12 of healthy throughput when ≈300 MiB of working
    /// set is swapped, and to ≈0.02 when ≈1 GiB is.
    fn default() -> PagingModel {
        // Calibrated to Fig. 7's four anchor points (default/preload at
        // 8 and 9 VMs) with ~80 MiB of cold memory per 1 GiB guest.
        PagingModel {
            cold_penalty: 0.10,
            thrash_coeff: 414.0,
        }
    }
}

impl PagingModel {
    /// Computes the slowdown factor in `(0, 1]`.
    ///
    /// * `resident_mib` — host frames in use.
    /// * `ram_mib` / `reserve_mib` — physical RAM and the host's own
    ///   share of it.
    /// * `cold_mib` — memory nobody will touch again soon (swappable for
    ///   a mild penalty).
    #[must_use]
    pub fn slowdown(
        &self,
        resident_mib: f64,
        ram_mib: f64,
        reserve_mib: f64,
        cold_mib: f64,
    ) -> f64 {
        let usable = (ram_mib - reserve_mib).max(1.0);
        let overflow = resident_mib - usable;
        if overflow <= 0.0 {
            return 1.0;
        }
        if overflow <= cold_mib {
            return 1.0 - self.cold_penalty * (overflow / cold_mib.max(1.0));
        }
        let hot_deficit = overflow - cold_mib;
        let base = 1.0 - self.cold_penalty;
        let units = hot_deficit / usable;
        (base / (1.0 + self.thrash_coeff * units * units)).max(1e-4)
    }

    /// Multiplicative throughput boost from TLB reach: `1.0` when no
    /// memory is huge-mapped, up to `1.0 + TLB_REACH_GAIN` when all of
    /// it is. `huge_fraction` is huge-mapped pages over resident pages,
    /// clamped to `[0, 1]`. Exactly `1.0` for zero input, so runs
    /// without huge pages are bit-identical to the pre-THP model.
    #[must_use]
    pub fn tlb_boost(&self, huge_fraction: f64) -> f64 {
        1.0 + TLB_REACH_GAIN * huge_fraction.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_when_memory_fits() {
        let m = PagingModel::default();
        assert_eq!(m.slowdown(1000.0, 2048.0, 100.0, 0.0), 1.0);
        assert_eq!(m.slowdown(1948.0, 2048.0, 100.0, 0.0), 1.0);
    }

    #[test]
    fn cold_regime_is_mild_and_monotone() {
        let m = PagingModel::default();
        let a = m.slowdown(2100.0, 2048.0, 0.0, 500.0);
        let b = m.slowdown(2400.0, 2048.0, 0.0, 500.0);
        assert!(a > b);
        assert!(b >= 1.0 - m.cold_penalty - 1e-9);
    }

    #[test]
    fn thrashing_collapses() {
        let m = PagingModel::default();
        // ≈320 MiB of hot deficit → ≈0.12 of healthy throughput, the
        // paper's 17.2/148 at 8 default-configured VMs.
        let s = m.slowdown(2048.0 + 500.0 + 320.0, 2048.0, 0.0, 500.0);
        assert!((0.08..0.18).contains(&s), "slowdown {s}");
        // ≈1 GiB hot deficit → a few percent (the 9-VM bars).
        let s9 = m.slowdown(2048.0 + 500.0 + 1000.0, 2048.0, 0.0, 500.0);
        assert!(s9 < 0.03, "slowdown {s9}");
    }

    #[test]
    fn continuity_at_regime_boundary() {
        let m = PagingModel::default();
        let end_cold = m.slowdown(2548.0, 2048.0, 0.0, 500.0);
        let start_hot = m.slowdown(2548.1, 2048.0, 0.0, 500.0);
        assert!((end_cold - start_hot).abs() < 0.01);
    }

    #[test]
    fn never_reaches_zero() {
        let m = PagingModel::default();
        assert!(m.slowdown(1e9, 1024.0, 0.0, 0.0) > 0.0);
    }

    #[test]
    fn tlb_boost_is_identity_without_huge_pages() {
        let m = PagingModel::default();
        assert_eq!(m.tlb_boost(0.0), 1.0);
        assert!(m.tlb_boost(1.0) > 1.0);
        assert!(m.tlb_boost(0.5) < m.tlb_boost(1.0));
        // Clamped against nonsense inputs.
        assert_eq!(m.tlb_boost(7.0), m.tlb_boost(1.0));
        assert_eq!(m.tlb_boost(-3.0), 1.0);
    }
}
