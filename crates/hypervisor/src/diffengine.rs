//! Difference Engine estimator — the Gupta et al. (OSDI '08) baseline.
//!
//! Difference Engine goes beyond whole-page sharing with two
//! paging-to-RAM techniques: **compressing** cold pages, and **sub-page
//! sharing** (storing a patch against a similar reference page). The
//! paper under reproduction argues (§VI) that for Java class metadata
//! TPS is preferable because reading a TPS-shared page is free, while
//! every access to a compressed or patched page pays a reconstruction
//! cost.
//!
//! [`DiffEngine`] is a *what-if estimator*: pointed at the live system it
//! reports how much additional memory compression and patching could
//! reclaim, and what fraction of memory would become
//! expensive-to-access. Whole-page duplicate detection is exact (content
//! fingerprints); compressibility and patchability are parametric, with
//! defaults taken from the OSDI paper's measurements (≈2× compression on
//! cold pages, patches ≈ 1/5 of a page on similar pages).

use mem::Tick;
use paging::HostMm;
use std::collections::HashMap;

/// Parameters of the Difference Engine estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffEngine {
    /// A page is "cold" (eligible for compression/patching) if it has not
    /// been written for this many ticks.
    pub cold_after_ticks: u64,
    /// Compressed size as a fraction of a page (OSDI '08 reports ≈ 0.5
    /// for cold anonymous pages).
    pub compression_ratio: f64,
    /// Fraction of cold, non-duplicate pages that have a similar-enough
    /// reference page to patch against.
    pub patchable_fraction: f64,
    /// Patch size as a fraction of a page (≈ 0.2 in OSDI '08).
    pub patch_ratio: f64,
}

impl Default for DiffEngine {
    fn default() -> DiffEngine {
        DiffEngine {
            cold_after_ticks: 600, // one simulated minute
            compression_ratio: 0.5,
            patchable_fraction: 0.3,
            patch_ratio: 0.2,
        }
    }
}

/// The estimator's report.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DiffEngineReport {
    /// Pages reclaimable by whole-page sharing (what TPS/KSM gets).
    pub whole_page_dup_pages: u64,
    /// Additional MiB reclaimable by compressing cold singleton pages.
    pub compression_saving_mib: f64,
    /// Additional MiB reclaimable by sub-page patching.
    pub patching_saving_mib: f64,
    /// Pages that would require reconstruction on access — the latency
    /// liability TPS does not have.
    pub slow_access_pages: u64,
}

impl DiffEngineReport {
    /// Total estimated MiB beyond whole-page sharing.
    #[must_use]
    pub fn extra_saving_mib(&self) -> f64 {
        self.compression_saving_mib + self.patching_saving_mib
    }
}

impl DiffEngine {
    /// Estimates Difference Engine's reclaim on the current memory state.
    #[must_use]
    pub fn estimate(&self, mm: &HostMm, now: Tick) -> DiffEngineReport {
        let mut groups: HashMap<u128, u64> = HashMap::new();
        let mut cold_frames: Vec<u128> = Vec::new();
        for (_, frame) in mm.phys().iter() {
            let fp = frame.fingerprint().as_u128();
            *groups.entry(fp).or_insert(0) += 1;
            let age = now.0.saturating_sub(frame.last_write().0);
            if age >= self.cold_after_ticks {
                cold_frames.push(fp);
            }
        }
        let whole_page_dup_pages: u64 = groups.values().map(|&n| n - 1).sum();
        // Cold singletons: cold frames whose content is unique.
        let cold_singletons = cold_frames
            .iter()
            .filter(|fp| groups.get(fp).copied() == Some(1))
            .count() as u64;
        let patched = (cold_singletons as f64 * self.patchable_fraction).round();
        let compressed = cold_singletons as f64 - patched;
        let page_mib = 4096.0 / (1024.0 * 1024.0);
        DiffEngineReport {
            whole_page_dup_pages,
            compression_saving_mib: compressed * (1.0 - self.compression_ratio) * page_mib,
            patching_saving_mib: patched * (1.0 - self.patch_ratio) * page_mib,
            slow_access_pages: cold_singletons,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem::Fingerprint;
    use paging::MemTag;

    fn setup() -> HostMm {
        let mut mm = HostMm::new();
        let s = mm.create_space("vm");
        let r = mm.map_region(s, 30, MemTag::VmGuestMemory, true);
        // 10 duplicate pairs (20 pages), 10 cold singletons.
        for i in 0..10u64 {
            mm.write_page(s, r.offset(2 * i), Fingerprint::of(&[i]), Tick(0));
            mm.write_page(s, r.offset(2 * i + 1), Fingerprint::of(&[i]), Tick(0));
            mm.write_page(s, r.offset(20 + i), Fingerprint::of(&[100 + i]), Tick(0));
        }
        mm
    }

    #[test]
    fn counts_duplicates_and_cold_singletons() {
        let mm = setup();
        let report = DiffEngine::default().estimate(&mm, Tick(10_000));
        assert_eq!(report.whole_page_dup_pages, 10);
        assert_eq!(report.slow_access_pages, 10);
        assert!(report.extra_saving_mib() > 0.0);
        // 7 compressed × 0.5 + 3 patched × 0.8 of a page.
        let page_mib = 4096.0 / (1024.0 * 1024.0);
        let expected = 7.0 * 0.5 * page_mib + 3.0 * 0.8 * page_mib;
        assert!((report.extra_saving_mib() - expected).abs() < 1e-9);
    }

    #[test]
    fn hot_pages_are_not_touched() {
        let mm = setup();
        // Nothing is cold yet at tick 10.
        let report = DiffEngine::default().estimate(&mm, Tick(10));
        assert_eq!(report.slow_access_pages, 0);
        assert_eq!(report.extra_saving_mib(), 0.0);
        // Whole-page duplicates are found regardless of temperature.
        assert_eq!(report.whole_page_dup_pages, 10);
    }

    #[test]
    fn already_merged_frames_are_not_double_counted() {
        let mut mm = setup();
        let s = mm.spaces()[0].id();
        // Merge one duplicate pair the way KSM would.
        let r = mm.spaces()[0].regions().next().unwrap().base();
        let f0 = mm.frame_at(s, r).unwrap();
        let f1 = mm.frame_at(s, r.offset(1)).unwrap();
        mm.merge_frames(f1, f0);
        let report = DiffEngine::default().estimate(&mm, Tick(10_000));
        // One pair collapsed into a single (shared) frame: 9 dups left.
        assert_eq!(report.whole_page_dup_pages, 9);
    }
}
