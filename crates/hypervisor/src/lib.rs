//! Hypervisor hosts: KVM (process-VM) and PowerVM (system-VM).
//!
//! The paper's methodology section (Fig. 1) distinguishes hypervisors
//! built as *process VMs* — KVM, where each guest is a host process whose
//! guest-physical memory is a memslot region in its host address space —
//! from *system VMs* like PowerVM, where the hypervisor owns the extra
//! translation layer directly. Both are provided here on top of the same
//! [`HostMm`](paging::HostMm):
//!
//! * [`KvmHost`] — creates guests as VM processes (memslot + QEMU-style
//!   overhead region), boots a [`GuestOs`](oskernel::GuestOs) in each,
//!   spawns the guest's background daemons, and exposes the split borrows
//!   the per-tick simulation needs.
//! * [`PowerVmHost`] — creates LPARs without a VM-process layer and
//!   deduplicates with the run-to-convergence
//!   [`PowerVmScanner`](ksm::PowerVmScanner) (§V.B / Fig. 6).
//! * [`PagingModel`] — the memory-over-commit throughput model behind
//!   Figs. 7–8: when resident memory exceeds usable host RAM the host
//!   pages out; while the victims are cold pages the penalty is mild, but
//!   once the working set itself is swapped, service times inflate and
//!   throughput collapses.
//! * [`BalloonDriver`] — the related-work baseline (§VI): reclaim
//!   guest-free (zeroed) pages by unmapping them, instead of sharing.
//!
//! # Example
//!
//! ```
//! use hypervisor::{HostConfig, KvmHost};
//! use mem::Tick;
//! use oskernel::OsImage;
//!
//! let mut host = KvmHost::new(HostConfig::paper_intel());
//! let g = host.create_guest("vm1", 64.0, &OsImage::tiny_test(), 1, Tick(0));
//! assert!(host.resident_mib() > 0.0);
//! let (mm, guest) = host.mm_and_guest_mut(g);
//! assert!(guest.os.guest_pages() > 0);
//! assert!(mm.phys().allocated_frames() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod balloon;
mod diffengine;
mod kvm;
mod pagingmodel;
mod placement;
mod powervm;
mod satori;

pub use balloon::BalloonDriver;
pub use diffengine::{DiffEngine, DiffEngineReport};
pub use kvm::{HostConfig, KvmGuest, KvmHost};
pub use pagingmodel::PagingModel;
pub use placement::{PageSummary, Placement, SharingPlanner};
pub use powervm::{PowerVmHost, PowerVmLpar};
pub use satori::share_page_caches;
