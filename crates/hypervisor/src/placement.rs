//! Sharing-aware VM placement — the Memory Buddies baseline (§VI).
//!
//! Wood et al. (VEE '09) increase page sharing by *collocating* guest VMs
//! with similar memory contents, estimated from compact per-VM memory
//! fingerprints (Bloom filters over page hashes) so candidate pairings
//! can be scored without shipping page lists around the datacenter. The
//! paper under reproduction notes that this helped native workloads but
//! found little to share for Java (SPECjbb) — because, as §III shows,
//! Java page *contents* differ even between identical workloads. With
//! class preloading, placement becomes useful again: VMs with the same
//! cache file are excellent buddies.
//!
//! [`PageSummary`] is the Bloom-filter fingerprint; [`SharingPlanner`]
//! greedily packs VMs onto hosts to maximise estimated intra-host
//! sharing.

use mem::FrameId;
use paging::{AsId, HostMm};
use std::collections::HashSet;

/// A compact summary of one VM's page contents: a Bloom filter over the
/// content fingerprints of its mapped pages.
///
/// # Example
///
/// ```
/// use hypervisor::PageSummary;
///
/// let mut a = PageSummary::new(4096);
/// let mut b = PageSummary::new(4096);
/// for i in 0..500u64 {
///     a.insert_raw(i);
///     b.insert_raw(i + 250); // half overlap
/// }
/// let est = a.estimated_common_pages(&b);
/// assert!((150.0..350.0).contains(&est), "estimate {est}");
/// ```
#[derive(Debug, Clone)]
pub struct PageSummary {
    bits: Vec<u64>,
    m: usize,
    inserted: u64,
}

const HASHES: u32 = 4;

impl PageSummary {
    /// Creates a summary with `m` filter bits (rounded up to a multiple
    /// of 64). Size the filter at ~8–16 bits per expected page.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn new(m: usize) -> PageSummary {
        assert!(m > 0, "filter needs at least one bit");
        let words = m.div_ceil(64);
        PageSummary {
            bits: vec![0; words],
            m: words * 64,
            inserted: 0,
        }
    }

    /// Summarises every mapped page of one VM's host address space.
    #[must_use]
    pub fn of_space(mm: &HostMm, space: AsId, m: usize) -> PageSummary {
        let mut summary = PageSummary::new(m);
        let mut seen: HashSet<FrameId> = HashSet::new();
        for region in mm.space(space).regions() {
            for (_, frame) in region.iter_mapped() {
                if seen.insert(frame) {
                    summary.insert_raw(mm.phys().fingerprint(frame).as_u128() as u64);
                }
            }
        }
        summary
    }

    /// Inserts one page-content hash.
    pub fn insert_raw(&mut self, content_hash: u64) {
        self.inserted += 1;
        for k in 0..HASHES {
            let bit = self.index(content_hash, k);
            self.bits[bit / 64] |= 1 << (bit % 64);
        }
    }

    fn index(&self, hash: u64, k: u32) -> usize {
        let mixed = hash
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(11 + 13 * k)
            ^ u64::from(k).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
        (mixed % self.m as u64) as usize
    }

    fn popcount(&self) -> u64 {
        self.bits.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Estimated distinct pages behind a filter with `x` set bits
    /// (the standard Bloom cardinality estimator).
    fn cardinality_of_bits(&self, x: u64) -> f64 {
        let m = self.m as f64;
        let x = (x as f64).min(m - 1.0);
        -(m / f64::from(HASHES)) * (1.0 - x / m).ln()
    }

    /// Estimates how many distinct page contents `self` and `other` have
    /// in common — the expected sharing if the two VMs were collocated
    /// (inclusion–exclusion over Bloom cardinalities).
    ///
    /// # Panics
    ///
    /// Panics if the two summaries have different filter sizes.
    #[must_use]
    pub fn estimated_common_pages(&self, other: &PageSummary) -> f64 {
        assert_eq!(self.m, other.m, "summaries must use equal filter sizes");
        let union_bits: u64 = self
            .bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| u64::from((a | b).count_ones()))
            .sum();
        let a = self.cardinality_of_bits(self.popcount());
        let b = self.cardinality_of_bits(other.popcount());
        let union = self.cardinality_of_bits(union_bits);
        (a + b - union).max(0.0)
    }

    /// Number of pages inserted.
    #[must_use]
    pub fn inserted(&self) -> u64 {
        self.inserted
    }
}

/// A placement decision: which VM goes on which host.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// `assignment[vm] = host index`.
    pub assignment: Vec<usize>,
    /// Estimated pages saved by intra-host sharing under this placement.
    pub estimated_saving_pages: f64,
}

/// Greedy sharing-aware placement of VMs onto hosts of fixed slot
/// capacity, in the spirit of Memory Buddies' "smart colocation".
///
/// # Example
///
/// ```
/// use hypervisor::{PageSummary, SharingPlanner};
///
/// // Two pairs of look-alike VMs.
/// let mut summaries = Vec::new();
/// for vm in 0..4u64 {
///     let mut s = PageSummary::new(2048);
///     for p in 0..200u64 {
///         s.insert_raw(p + 10_000 * (vm % 2)); // vms 0,2 alike; 1,3 alike
///     }
///     summaries.push(s);
/// }
/// let placement = SharingPlanner::new(2).place(&summaries);
/// // Look-alikes end up together.
/// assert_eq!(placement.assignment[0], placement.assignment[2]);
/// assert_eq!(placement.assignment[1], placement.assignment[3]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SharingPlanner {
    slots_per_host: usize,
}

impl SharingPlanner {
    /// Creates a planner for hosts holding `slots_per_host` VMs each.
    ///
    /// # Panics
    ///
    /// Panics if `slots_per_host` is zero.
    #[must_use]
    pub fn new(slots_per_host: usize) -> SharingPlanner {
        assert!(slots_per_host > 0, "hosts need at least one slot");
        SharingPlanner { slots_per_host }
    }

    /// Assigns every VM to a host, greedily seating each VM (in order of
    /// decreasing total affinity) where its estimated sharing with the
    /// already-seated VMs is highest.
    #[must_use]
    pub fn place(&self, summaries: &[PageSummary]) -> Placement {
        let n = summaries.len();
        let hosts = n.div_ceil(self.slots_per_host).max(1);
        // Pairwise affinity matrix.
        let mut affinity = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let est = summaries[i].estimated_common_pages(&summaries[j]);
                affinity[i][j] = est;
                affinity[j][i] = est;
            }
        }
        // Seat VMs in order of total affinity (most shareable first).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let sa: f64 = affinity[a].iter().sum();
            let sb: f64 = affinity[b].iter().sum();
            sb.partial_cmp(&sa).expect("affinities are finite")
        });
        let mut assignment = vec![usize::MAX; n];
        let mut load = vec![0usize; hosts];
        let mut saving = 0.0;
        for &vm in &order {
            let mut best_host = usize::MAX;
            let mut best_gain = -1.0;
            for (host, &seated) in load.iter().enumerate() {
                if seated >= self.slots_per_host {
                    continue;
                }
                let gain: f64 = (0..n)
                    .filter(|&other| assignment[other] == host)
                    .map(|other| affinity[vm][other])
                    .sum();
                if gain > best_gain {
                    best_gain = gain;
                    best_host = host;
                }
            }
            assignment[vm] = best_host;
            load[best_host] += 1;
            saving += best_gain.max(0.0);
        }
        Placement {
            assignment,
            estimated_saving_pages: saving,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostConfig, KvmHost};
    use mem::Tick;
    use oskernel::OsImage;

    fn host_config() -> HostConfig {
        HostConfig::paper_intel().scaled(16.0)
    }

    #[test]
    fn same_image_guests_have_high_estimated_sharing() {
        let mut host = KvmHost::new(host_config());
        let g1 = host.create_guest("a", 64.0, &OsImage::tiny_test(), 1, Tick::ZERO);
        let g2 = host.create_guest("b", 64.0, &OsImage::tiny_test(), 2, Tick::ZERO);
        let s1 = PageSummary::of_space(host.mm(), host.guest(g1).os.vm_space(), 1 << 14);
        let s2 = PageSummary::of_space(host.mm(), host.guest(g2).os.vm_space(), 1 << 14);
        let est = s1.estimated_common_pages(&s2);
        // The shareable part of the tiny image is kernel code + clean
        // page cache.
        let expected = mem::mib_to_pages(OsImage::tiny_test().shareable_mib()) as f64;
        assert!(
            (est - expected).abs() < 0.35 * expected + 8.0,
            "estimate {est} vs expected {expected}"
        );
    }

    #[test]
    fn estimate_is_roughly_symmetric() {
        let mut a = PageSummary::new(8192);
        let mut b = PageSummary::new(8192);
        for i in 0..300u64 {
            a.insert_raw(i);
            b.insert_raw(i * 3);
        }
        let ab = a.estimated_common_pages(&b);
        let ba = b.estimated_common_pages(&a);
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn disjoint_contents_estimate_near_zero() {
        let mut a = PageSummary::new(1 << 14);
        let mut b = PageSummary::new(1 << 14);
        for i in 0..400u64 {
            a.insert_raw(i);
            b.insert_raw(1_000_000 + i);
        }
        assert!(a.estimated_common_pages(&b) < 40.0);
    }

    #[test]
    #[should_panic(expected = "equal filter sizes")]
    fn mismatched_filters_rejected() {
        let a = PageSummary::new(64);
        let b = PageSummary::new(128);
        let _ = a.estimated_common_pages(&b);
    }

    #[test]
    fn planner_fills_all_slots() {
        let summaries: Vec<PageSummary> = (0..5).map(|_| PageSummary::new(64)).collect();
        let placement = SharingPlanner::new(2).place(&summaries);
        assert_eq!(placement.assignment.len(), 5);
        for host in 0..3 {
            let count = placement.assignment.iter().filter(|&&h| h == host).count();
            assert!(count <= 2);
        }
        assert!(placement.assignment.iter().all(|&h| h != usize::MAX));
    }
}
