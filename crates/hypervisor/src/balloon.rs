//! Ballooning baseline (§VI related work).

use mem::Fingerprint;
use oskernel::GuestOs;
use paging::HostMm;

/// A balloon driver: reclaims guest memory by unmapping pages the guest
/// is not using, instead of (or in addition to) sharing them.
///
/// The paper's related-work section notes ballooning "requires a resource
/// manager that can decide on the size of each guest VM" and that KVM
/// ships none — this type is the comparator for the ablation benchmark,
/// not part of the proposed technique.
///
/// The model reclaims pages whose content is all-zero (the guest-free
/// proxy: Linux zeroes pages on free-to-allocator paths and the GC
/// zero-fills collected space), up to a target.
///
/// # Example
///
/// ```
/// use hypervisor::{BalloonDriver, HostConfig, KvmHost};
/// use mem::{Fingerprint, Tick};
/// use oskernel::OsImage;
/// use paging::MemTag;
///
/// let mut host = KvmHost::new(HostConfig::paper_intel().scaled(16.0));
/// let g = host.create_guest("vm1", 64.0, &OsImage::tiny_test(), 1, Tick(0));
/// let (mm, guest) = host.mm_and_guest_mut(g);
/// let pid = guest.os.spawn("app");
/// let r = guest.os.add_region(pid, 8, MemTag::JavaHeap);
/// for i in 0..8 {
///     guest.os.write_page(mm, pid, r.offset(i), Fingerprint::ZERO, Tick(1));
/// }
/// let reclaimed = BalloonDriver::new(4.0).inflate(mm, &mut guest.os);
/// assert!(reclaimed > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BalloonDriver {
    target_mib: f64,
}

impl BalloonDriver {
    /// Creates a balloon aiming to reclaim up to `target_mib` from a
    /// guest per inflation.
    #[must_use]
    pub fn new(target_mib: f64) -> BalloonDriver {
        BalloonDriver { target_mib }
    }

    /// Inflates the balloon inside `guest`: scans the guest's contexts
    /// for zero pages and unmaps them (host frames are freed; the guest
    /// page faults them back in on next use). Returns pages reclaimed.
    pub fn inflate(&self, mm: &mut HostMm, guest: &mut GuestOs) -> usize {
        let budget = mem::mib_to_pages(self.target_mib);
        let mut victims = Vec::new();
        let vm_space = guest.vm_space();
        for (pid, gas) in guest.contexts() {
            for region in gas.regions() {
                for (vpn, gpfn) in region.iter_mapped() {
                    if victims.len() >= budget {
                        break;
                    }
                    let host_vpn = guest.host_vpn(gpfn);
                    if mm.fingerprint_at(vm_space, host_vpn) == Some(Fingerprint::ZERO) {
                        victims.push((pid, vpn));
                    }
                }
            }
        }
        let reclaimed = victims.len();
        for (pid, vpn) in victims {
            // The guest returns the page: host frame freed, guest frame
            // back on the free list.
            guest.release_page(mm, pid, vpn);
        }
        if reclaimed > 0 {
            mm.note_balloon_reclaim(reclaimed as u64);
            mm.tracer().emit_with(|| obs::EventKind::BalloonInflate {
                space: vm_space.index() as u32,
                pages: reclaimed as u64,
            });
        }
        reclaimed
    }

    /// The reclaim target, MiB.
    #[must_use]
    pub fn target_mib(&self) -> f64 {
        self.target_mib
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostConfig, KvmHost};
    use mem::Tick;
    use oskernel::OsImage;
    use paging::MemTag;

    #[test]
    fn inflate_reclaims_only_zero_pages_up_to_target() {
        let mut host = KvmHost::new(HostConfig::paper_intel().scaled(16.0));
        let g = host.create_guest("vm1", 64.0, &OsImage::tiny_test(), 1, Tick(0));
        let (mm, guest) = host.mm_and_guest_mut(g);
        let pid = guest.os.spawn("app");
        let r = guest.os.add_region(pid, 16, MemTag::JavaHeap);
        for i in 0..16 {
            let fp = if i < 10 {
                Fingerprint::ZERO
            } else {
                Fingerprint::of(&[i])
            };
            guest.os.write_page(mm, pid, r.offset(i), fp, Tick(1));
        }
        let frames_before = mm.phys().allocated_frames();
        // Budget of 4 pages.
        let reclaimed =
            BalloonDriver::new(4.0 * 4096.0 / (1024.0 * 1024.0)).inflate(mm, &mut guest.os);
        assert_eq!(reclaimed, 4);
        assert_eq!(mm.phys().allocated_frames(), frames_before - 4);
        // Unlimited budget reclaims the remaining six zeros only.
        let reclaimed = BalloonDriver::new(1024.0).inflate(mm, &mut guest.os);
        assert_eq!(reclaimed, 6);
        mm.assert_consistent();
    }

    #[test]
    fn refault_after_ballooning_works() {
        let mut host = KvmHost::new(HostConfig::paper_intel().scaled(16.0));
        let g = host.create_guest("vm1", 64.0, &OsImage::tiny_test(), 1, Tick(0));
        let (mm, guest) = host.mm_and_guest_mut(g);
        let pid = guest.os.spawn("app");
        let r = guest.os.add_region(pid, 2, MemTag::JavaHeap);
        guest.os.write_page(mm, pid, r, Fingerprint::ZERO, Tick(1));
        assert_eq!(BalloonDriver::new(1.0).inflate(mm, &mut guest.os), 1);
        assert_eq!(guest.os.fingerprint_at(mm, pid, r), None);
        guest
            .os
            .write_page(mm, pid, r, Fingerprint::of(&[5]), Tick(2));
        assert_eq!(
            guest.os.fingerprint_at(mm, pid, r),
            Some(Fingerprint::of(&[5]))
        );
    }
}
