//! The PowerVM-style system-VM host (§V.B, Fig. 6).

use ksm::{PowerVmReport, PowerVmScanner};
use mem::Tick;
use oskernel::{GuestOs, OsImage};
use paging::HostMm;

/// One LPAR (logical partition): a guest whose memory the hypervisor maps
/// directly, with no VM-process layer in between (Fig. 1a).
#[derive(Debug)]
pub struct PowerVmLpar {
    /// LPAR name.
    pub name: String,
    /// The booted guest OS (AIX in the paper's POWER measurements).
    pub os: GuestOs,
}

/// A PowerVM host: LPARs over a shared frame pool, deduplicated by the
/// run-to-convergence Active Memory Deduplication scanner.
///
/// # Example
///
/// ```
/// use hypervisor::PowerVmHost;
/// use mem::Tick;
/// use oskernel::OsImage;
///
/// let mut host = PowerVmHost::new();
/// host.create_lpar("lpar1", 64.0, &OsImage::tiny_test(), 1, Tick(0));
/// host.create_lpar("lpar2", 64.0, &OsImage::tiny_test(), 2, Tick(0));
/// let before = host.resident_mib();
/// let report = host.dedupe(Tick(1));
/// assert!(report.pages_merged > 0);
/// assert!(host.resident_mib() < before);
/// ```
#[derive(Debug, Default)]
pub struct PowerVmHost {
    mm: HostMm,
    lpars: Vec<PowerVmLpar>,
}

impl PowerVmHost {
    /// Creates an empty host.
    #[must_use]
    pub fn new() -> PowerVmHost {
        PowerVmHost::default()
    }

    /// The host memory manager.
    #[must_use]
    pub fn mm(&self) -> &HostMm {
        &self.mm
    }

    /// The LPARs in creation order.
    #[must_use]
    pub fn lpars(&self) -> &[PowerVmLpar] {
        &self.lpars
    }

    /// Split borrow for the per-tick loop.
    pub fn mm_and_lpar_mut(&mut self, idx: usize) -> (&mut HostMm, &mut PowerVmLpar) {
        (&mut self.mm, &mut self.lpars[idx])
    }

    /// Creates and boots an LPAR with `mem_mib` of memory. Returns its
    /// index.
    pub fn create_lpar(
        &mut self,
        name: impl Into<String>,
        mem_mib: f64,
        image: &OsImage,
        boot_salt: u64,
        now: Tick,
    ) -> usize {
        let name = name.into();
        let space = self.mm.create_space(format!("lpar-{name}"));
        let os = GuestOs::boot(
            &mut self.mm,
            space,
            mem::mib_to_pages(mem_mib),
            image,
            boot_salt,
            now,
        );
        self.lpars.push(PowerVmLpar { name, os });
        self.lpars.len() - 1
    }

    /// Advances background kernel activity in every LPAR.
    pub fn tick(&mut self, now: Tick) {
        for lpar in &mut self.lpars {
            lpar.os.tick(&mut self.mm, now);
        }
    }

    /// Runs Active Memory Deduplication to convergence — the paper's
    /// "after finishing page sharing" measurement point.
    pub fn dedupe(&mut self, now: Tick) -> PowerVmReport {
        PowerVmScanner::new().run_to_convergence(&mut self.mm, now)
    }

    /// Host physical memory currently allocated, MiB — what the paper
    /// reads from "the monitoring feature of PowerVM".
    #[must_use]
    pub fn resident_mib(&self) -> f64 {
        mem::pages_to_mib(self.mm.phys().allocated_frames())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_lpars_share_image_pages() {
        let mut host = PowerVmHost::new();
        for i in 0..3u64 {
            host.create_lpar(
                format!("lpar{i}"),
                32.0,
                &OsImage::tiny_test(),
                i + 1,
                Tick(0),
            );
        }
        let before = host.resident_mib();
        let report = host.dedupe(Tick(1));
        let after = host.resident_mib();
        assert!((before - after - report.saved_mib()).abs() < 0.01);
        // Kernel code + clean page cache are identical across the three:
        // two duplicate copies of each shareable page were merged.
        let img = OsImage::tiny_test();
        let expected = 2.0 * img.shareable_mib();
        assert!(
            (report.saved_mib() - expected).abs() < 0.2,
            "saved {} expected {expected}",
            report.saved_mib()
        );
        host.mm().assert_consistent();
    }

    #[test]
    fn dedupe_is_idempotent_at_convergence() {
        let mut host = PowerVmHost::new();
        host.create_lpar("a", 32.0, &OsImage::tiny_test(), 1, Tick(0));
        host.create_lpar("b", 32.0, &OsImage::tiny_test(), 2, Tick(0));
        let first = host.dedupe(Tick(1));
        let second = host.dedupe(Tick(2));
        assert!(first.pages_merged > 0);
        assert_eq!(second.pages_merged, 0);
    }
}
