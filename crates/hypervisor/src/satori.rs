//! Satori-style enlightened page-cache sharing (Miłoś et al.,
//! USENIX ATC '09) — the third related-work baseline of §VI.
//!
//! Satori avoids scanning altogether for the page cache: a
//! sharing-aware virtual block device notices that two guests read the
//! same disk blocks and maps the same host frame immediately. That
//! captures the guest-kernel half of the sharing in the paper's Fig. 2
//! with zero scan latency and zero scan CPU — but, as the paper notes,
//! it addresses Linux kernel memory, not the Java problem: anonymous JVM
//! pages never pass through the block device.
//!
//! [`share_page_caches`] performs the block-device merge for a set of
//! booted guests.

use mem::FrameId;
use oskernel::GuestOs;
use paging::{HostMm, MemTag};
use std::collections::HashMap;

/// Immediately shares identical *page-cache* pages across `guests`, the
/// way Satori's sharing-aware block device would (no scanning, no
/// volatility window — the device knows the blocks are identical at read
/// time). Returns the number of duplicate pages eliminated.
///
/// Only pages in regions tagged [`MemTag::GuestPageCache`] participate;
/// anonymous memory is untouched, which is exactly Satori's limitation
/// for Java workloads.
///
/// # Example
///
/// ```
/// use hypervisor::{share_page_caches, HostConfig, KvmHost};
/// use mem::Tick;
/// use oskernel::OsImage;
///
/// let mut host = KvmHost::new(HostConfig::paper_intel().scaled(16.0));
/// host.create_guest("a", 64.0, &OsImage::tiny_test(), 1, Tick::ZERO);
/// host.create_guest("b", 64.0, &OsImage::tiny_test(), 2, Tick::ZERO);
/// let (mm, guests) = host.mm_and_all_guests();
/// let merged = share_page_caches(mm, &guests);
/// assert!(merged > 0);
/// ```
pub fn share_page_caches(mm: &mut HostMm, guests: &[&GuestOs]) -> u64 {
    // Collect candidate (host frame) sites from the guests' page-cache
    // regions, keyed by content.
    let mut canonical: HashMap<u128, FrameId> = HashMap::new();
    let mut merged = 0;
    let mut sites: Vec<(paging::AsId, paging::Vpn)> = Vec::new();
    for guest in guests {
        for (_, gas) in guest.contexts() {
            for region in gas.regions() {
                if region.tag() != MemTag::GuestPageCache {
                    continue;
                }
                for (_, gpfn) in region.iter_mapped() {
                    sites.push((guest.vm_space(), guest.host_vpn(gpfn)));
                }
            }
        }
    }
    for (space, vpn) in sites {
        let Some(frame) = mm.frame_at(space, vpn) else {
            continue;
        };
        let fp = mm.phys().fingerprint(frame).as_u128();
        match canonical.get(&fp) {
            Some(&canon)
                if canon != frame
                    && mm.phys().is_live(canon)
                    && mm.phys().fingerprint(canon).as_u128() == fp =>
            {
                merged += u64::from(mm.phys().refcount(frame));
                mm.merge_frames(frame, canon);
            }
            Some(_) => {}
            None => {
                canonical.insert(fp, frame);
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostConfig, KvmHost};
    use mem::Tick;
    use oskernel::OsImage;

    fn booted_host(n: usize) -> KvmHost {
        let mut host = KvmHost::new(HostConfig::paper_intel().scaled(16.0));
        for i in 0..n {
            host.create_guest(
                format!("vm{i}"),
                64.0,
                &OsImage::tiny_test(),
                i as u64 + 1,
                Tick::ZERO,
            );
        }
        host
    }

    #[test]
    fn shares_clean_page_cache_instantly() {
        let mut host = booted_host(3);
        let before = host.resident_mib();
        let (mm, guest_refs) = host.mm_and_all_guests();
        let merged = share_page_caches(mm, &guest_refs);
        // Clean page cache of the tiny image is identical across guests:
        // two duplicate copies merged per extra guest.
        let clean_pages = mem::mib_to_pages(OsImage::tiny_test().pagecache_clean_mib) as u64;
        assert_eq!(merged, 2 * clean_pages);
        assert!(host.resident_mib() < before);
        host.mm().assert_consistent();
    }

    #[test]
    fn anonymous_memory_is_untouched() {
        let mut host = booted_host(2);
        // Give both guests identical *anonymous* pages.
        for i in 0..2 {
            let (mm, guest) = host.mm_and_guest_mut(i);
            let pid = guest.os.spawn("app");
            let r = guest.os.add_region(pid, 4, paging::MemTag::JavaHeap);
            for p in 0..4 {
                guest
                    .os
                    .write_page(mm, pid, r.offset(p), mem::Fingerprint::of(&[p]), Tick(1));
            }
        }
        let anon_frames_before = host.mm().phys().allocated_frames();
        let (mm, guest_refs) = host.mm_and_all_guests();
        let merged = share_page_caches(mm, &guest_refs);
        // Only the page cache merged; the 8 identical anonymous pages did
        // not (Satori cannot see them).
        let clean_pages = mem::mib_to_pages(OsImage::tiny_test().pagecache_clean_mib) as u64;
        assert_eq!(merged, clean_pages);
        assert_eq!(
            host.mm().phys().allocated_frames(),
            anon_frames_before - merged as usize
        );
    }
}
