//! The KVM-style process-VM host.

use mem::{Fingerprint, Tick};
use oskernel::{GuestOs, OsImage, Pid};
use paging::{HostMm, MemTag, ThpPolicy, Vpn};

/// VM-process overhead outside guest memory (QEMU device state, runtime
/// heap) — "the pages used by the guest VM itself", which §II.D found to
/// be quite small: ≈26 MiB per 1 GiB guest. Proportional to guest size
/// so scaled experiments keep the paper's proportions.
const VM_OVERHEAD_MIB_PER_GIB: f64 = 26.0;

/// Non-Java guest user processes (init, sshd, cron, …), also small in
/// the paper's breakdown: ≈20 MiB per 1 GiB guest.
const DAEMONS_MIB_PER_GIB: f64 = 20.0;
const DAEMON_COUNT: usize = 5;

/// Physical host configuration (Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostConfig {
    /// Physical RAM, MiB.
    pub ram_mib: f64,
    /// RAM consumed by the host kernel and hypervisor runtime, MiB —
    /// unavailable to guests.
    pub reserve_mib: f64,
}

impl HostConfig {
    /// The paper's Intel host: IBM BladeCenter LS21, 6 GB RAM, RHEL 5.5
    /// host kernel + KVM.
    #[must_use]
    pub fn paper_intel() -> HostConfig {
        HostConfig {
            ram_mib: 6.0 * 1024.0,
            reserve_mib: 420.0,
        }
    }

    /// The paper's POWER host: IBM BladeCenter PS701, 128 GB RAM,
    /// PowerVM 2.1.
    #[must_use]
    pub fn paper_power() -> HostConfig {
        HostConfig {
            ram_mib: 128.0 * 1024.0,
            reserve_mib: 2048.0,
        }
    }

    /// Scales the host by `divisor` (matches scaling the guests, so
    /// over-commit ratios — and therefore the throughput knees — are
    /// preserved).
    #[must_use]
    pub fn scaled(&self, divisor: f64) -> HostConfig {
        assert!(divisor >= 1.0, "scale divisor must be >= 1");
        HostConfig {
            ram_mib: self.ram_mib / divisor,
            reserve_mib: self.reserve_mib / divisor,
        }
    }

    /// RAM usable by guests, MiB.
    #[must_use]
    pub fn usable_mib(&self) -> f64 {
        self.ram_mib - self.reserve_mib
    }
}

/// One guest VM: a host process containing the guest memslot, the booted
/// guest OS, and the VM runtime's own overhead pages.
#[derive(Debug)]
pub struct KvmGuest {
    /// Guest name (e.g. `"vm1"`).
    pub name: String,
    /// The booted guest operating system.
    pub os: GuestOs,
    /// Pids of the guest's background daemons.
    pub daemon_pids: Vec<Pid>,
    #[allow(dead_code)]
    overhead_base: Vpn,
}

/// A host machine running KVM guests over one shared frame pool.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct KvmHost {
    mm: HostMm,
    config: HostConfig,
    guests: Vec<KvmGuest>,
    thp_host: ThpPolicy,
    thp_guest: ThpPolicy,
}

impl KvmHost {
    /// Creates an empty host.
    #[must_use]
    pub fn new(config: HostConfig) -> KvmHost {
        KvmHost {
            mm: HostMm::new(),
            config,
            guests: Vec::new(),
            thp_host: ThpPolicy::Never,
            thp_guest: ThpPolicy::Never,
        }
    }

    /// Sets the host-side khugepaged policy and the THP policy handed
    /// to every *subsequently created* guest kernel.
    pub fn set_thp_policies(&mut self, host: ThpPolicy, guest: ThpPolicy) {
        self.thp_host = host;
        self.thp_guest = guest;
    }

    /// The host-side khugepaged policy.
    #[must_use]
    pub fn thp_host(&self) -> ThpPolicy {
        self.thp_host
    }

    /// Host configuration.
    #[must_use]
    pub fn config(&self) -> HostConfig {
        self.config
    }

    /// The host memory manager.
    #[must_use]
    pub fn mm(&self) -> &HostMm {
        &self.mm
    }

    /// Mutable access to the host memory manager (the KSM scanner drives
    /// merges through this).
    pub fn mm_mut(&mut self) -> &mut HostMm {
        &mut self.mm
    }

    /// The guests, in creation order.
    #[must_use]
    pub fn guests(&self) -> &[KvmGuest] {
        &self.guests
    }

    /// One guest by index.
    #[must_use]
    pub fn guest(&self, idx: usize) -> &KvmGuest {
        &self.guests[idx]
    }

    /// Split borrow for the per-tick loop: the memory manager *and* one
    /// guest, mutably.
    pub fn mm_and_guest_mut(&mut self, idx: usize) -> (&mut HostMm, &mut KvmGuest) {
        (&mut self.mm, &mut self.guests[idx])
    }

    /// Split borrow for the traffic engine's parallel plan phase: the
    /// memory manager plus *every* guest, all mutably. Callers shard the
    /// slice into disjoint per-guest work.
    pub fn mm_and_guests_mut(&mut self) -> (&mut HostMm, &mut [KvmGuest]) {
        (&mut self.mm, &mut self.guests)
    }

    /// Split borrow for whole-host operations (Satori sharing, placement
    /// summaries): the memory manager mutably plus read access to every
    /// guest OS.
    pub fn mm_and_all_guests(&mut self) -> (&mut HostMm, Vec<&GuestOs>) {
        (&mut self.mm, self.guests.iter().map(|g| &g.os).collect())
    }

    /// Creates a guest VM: a new VM process with `mem_mib` of guest
    /// memory, boots `image` in it, writes the VM runtime overhead, and
    /// starts the guest's background daemons. Returns the guest index.
    pub fn create_guest(
        &mut self,
        name: impl Into<String>,
        mem_mib: f64,
        image: &OsImage,
        boot_salt: u64,
        now: Tick,
    ) -> usize {
        let name = name.into();
        let vm_space = self.mm.create_space(format!("qemu-{name}"));
        self.mm
            .tracer()
            .emit_with(|| obs::EventKind::MemslotCreate {
                space: vm_space.index() as u32,
                pages: mem::mib_to_pages(mem_mib) as u64,
            });
        let mut os = GuestOs::boot(
            &mut self.mm,
            vm_space,
            mem::mib_to_pages(mem_mib),
            image,
            boot_salt,
            now,
        );
        os.set_thp_policy(self.thp_guest);
        // VM-process overhead: private, outside guest memory, not
        // madvise(MERGEABLE) (QEMU only advises the guest RAM block).
        let overhead_pages = mem::mib_to_pages(VM_OVERHEAD_MIB_PER_GIB * mem_mib / 1024.0).max(1);
        let overhead_base = self
            .mm
            .map_region(vm_space, overhead_pages, MemTag::VmOverhead, false);
        for i in 0..overhead_pages as u64 {
            self.mm.write_page(
                vm_space,
                overhead_base.offset(i),
                Fingerprint::of(&[0x9e40, boot_salt, i]),
                now,
            );
        }
        // Guest daemons: small, private.
        let mut daemon_pids = Vec::new();
        let per_daemon_pages =
            mem::mib_to_pages(DAEMONS_MIB_PER_GIB * mem_mib / 1024.0) / DAEMON_COUNT;
        for d in 0..DAEMON_COUNT {
            let pid = os.spawn(format!("daemon{d}"));
            let base = os.map_region(
                &mut self.mm,
                pid,
                per_daemon_pages.max(1),
                MemTag::OtherProcess,
            );
            for i in 0..per_daemon_pages as u64 {
                os.write_page(
                    &mut self.mm,
                    pid,
                    base.offset(i),
                    Fingerprint::of(&[0x0dae + d as u64, boot_salt, i]),
                    now,
                );
            }
            daemon_pids.push(pid);
        }
        self.guests.push(KvmGuest {
            name,
            os,
            daemon_pids,
            overhead_base,
        });
        self.guests.len() - 1
    }

    /// Advances background guest-kernel activity in every guest.
    pub fn tick(&mut self, now: Tick) {
        for guest in &mut self.guests {
            guest.os.tick(&mut self.mm, now);
        }
    }

    /// One khugepaged pass: scans every guest memslot for collapsible
    /// 2 MiB blocks under the host THP policy — every block when
    /// `always`, only guest-hinted blocks when `madvise`, nothing when
    /// `never`. [`HostMm::try_collapse`] re-verifies eligibility
    /// (fully populated, exclusively owned, not KSM-latched) per block.
    pub fn thp_scan(&mut self, _now: Tick) {
        if self.thp_host == ThpPolicy::Never {
            return;
        }
        for idx in 0..self.guests.len() {
            let space = self.guests[idx].os.vm_space();
            let base = self.guests[idx].os.host_vpn(0);
            let candidates: Vec<usize> = match self.thp_host {
                ThpPolicy::Never => unreachable!("early return above"),
                ThpPolicy::Always => {
                    let Some(region) = self.mm.space(space).region_at(base) else {
                        continue;
                    };
                    (0..region.block_count())
                        .filter(|&b| !region.is_huge_block(b) && !region.ksm_split_latched(b))
                        .collect()
                }
                ThpPolicy::Madvise => self.guests[idx]
                    .os
                    .huge_hint_blocks()
                    .map(|b| b as usize)
                    .collect(),
            };
            for block in candidates {
                self.mm.try_collapse(space, base, block);
            }
        }
    }

    /// Host pages currently mapped through 2 MiB translations in one
    /// guest's memslot.
    #[must_use]
    pub fn guest_huge_pages(&self, idx: usize) -> usize {
        let g = &self.guests[idx];
        let space = g.os.vm_space();
        self.mm
            .space(space)
            .region_at(g.os.host_vpn(0))
            .map_or(0, paging::Region::huge_pages)
    }

    /// Host pages currently mapped through 2 MiB translations across
    /// every guest memslot.
    #[must_use]
    pub fn huge_pages(&self) -> usize {
        (0..self.guests.len())
            .map(|i| self.guest_huge_pages(i))
            .sum()
    }

    /// Memory reached through 2 MiB translations, MiB — the TLB-reach
    /// numerator of the THP × KSM frontier.
    #[must_use]
    pub fn huge_mib(&self) -> f64 {
        mem::pages_to_mib(self.huge_pages())
    }

    /// Host physical memory currently allocated, MiB.
    #[must_use]
    pub fn resident_mib(&self) -> f64 {
        mem::pages_to_mib(self.mm.phys().allocated_frames())
    }

    /// Over-commit: resident beyond usable RAM, MiB (zero when healthy).
    #[must_use]
    pub fn overcommit_mib(&self) -> f64 {
        (self.resident_mib() - self.config.usable_mib()).max(0.0)
    }

    /// Exports the host-level deterministic gauges — resident/huge/
    /// over-commit MiB, guest count, usable RAM — into `reg`, then the
    /// memory manager's own counters via [`HostMm::record_metrics`].
    pub fn record_metrics(&self, reg: &mut obs::MetricsRegistry) {
        reg.gauge(
            "host_resident_mib",
            "Host physical memory currently allocated, MiB.",
            &[],
            self.resident_mib(),
        );
        reg.gauge(
            "host_huge_mib",
            "Memory reached through 2 MiB translations, MiB.",
            &[],
            self.huge_mib(),
        );
        reg.gauge(
            "host_overcommit_mib",
            "Resident beyond usable RAM, MiB (zero when healthy).",
            &[],
            self.overcommit_mib(),
        );
        reg.gauge(
            "host_usable_mib",
            "Usable host RAM after the hypervisor reserve, MiB.",
            &[],
            self.config.usable_mib(),
        );
        reg.gauge(
            "host_guests",
            "Guest VMs currently defined.",
            &[],
            self.guests.len() as f64,
        );
        self.mm.record_metrics(reg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem::HUGE_PAGE_SPAN;

    fn host_with_two_guests() -> KvmHost {
        let mut host = KvmHost::new(HostConfig::paper_intel().scaled(16.0));
        for (i, name) in ["vm1", "vm2"].iter().enumerate() {
            host.create_guest(*name, 64.0, &OsImage::tiny_test(), i as u64 + 1, Tick(0));
        }
        host
    }

    #[test]
    fn guests_boot_with_kernel_overhead_and_daemons() {
        let host = host_with_two_guests();
        assert_eq!(host.guests().len(), 2);
        for guest in host.guests() {
            assert_eq!(guest.daemon_pids.len(), DAEMON_COUNT);
            // Kernel + daemons populated.
            assert!(guest.os.gpfns_in_use() > 0);
        }
        // Both the memslots and overhead regions exist in the host mm.
        assert!(host.resident_mib() > 2.0 * OsImage::tiny_test().total_mib());
        host.mm().assert_consistent();
    }

    #[test]
    fn overhead_region_is_not_mergeable() {
        let host = host_with_two_guests();
        for space in host.mm().spaces() {
            for region in space.regions() {
                if region.tag() == MemTag::VmOverhead {
                    assert!(!region.mergeable());
                }
                if region.tag() == MemTag::VmGuestMemory {
                    assert!(region.mergeable());
                }
            }
        }
    }

    #[test]
    fn overcommit_accounting() {
        let mut host = KvmHost::new(HostConfig {
            ram_mib: 10.0,
            reserve_mib: 2.0,
        });
        assert_eq!(host.overcommit_mib(), 0.0);
        host.create_guest("vm1", 64.0, &OsImage::tiny_test(), 1, Tick(0));
        host.create_guest("vm2", 64.0, &OsImage::tiny_test(), 2, Tick(0));
        host.create_guest("vm3", 64.0, &OsImage::tiny_test(), 3, Tick(0));
        // Three guests' boot footprints exceed 8 MiB usable.
        assert!(host.overcommit_mib() > 0.0);
    }

    #[test]
    fn split_borrow_allows_guest_writes() {
        let mut host = host_with_two_guests();
        let (mm, guest) = host.mm_and_guest_mut(0);
        let pid = guest.os.spawn("p");
        let r = guest.os.add_region(pid, 2, MemTag::OtherProcess);
        guest
            .os
            .write_page(mm, pid, r, Fingerprint::of(&[1]), Tick(1));
        host.mm().assert_consistent();
    }

    #[test]
    fn thp_scan_collapses_under_always_policy() {
        let mut host = KvmHost::new(HostConfig::paper_intel().scaled(16.0));
        host.set_thp_policies(ThpPolicy::Always, ThpPolicy::Never);
        host.create_guest("vm1", 16.0, &OsImage::tiny_test(), 1, Tick(0));
        // Gpfns allocate densely from zero; filling past the boot
        // footprint completes the first memslot blocks even though the
        // guest itself faults 4 KiB at a time.
        let (mm, guest) = host.mm_and_guest_mut(0);
        let pid = guest.os.spawn("filler");
        let r = guest
            .os
            .add_region(pid, 2 * HUGE_PAGE_SPAN, MemTag::OtherProcess);
        for i in 0..(2 * HUGE_PAGE_SPAN) as u64 {
            guest
                .os
                .write_page(mm, pid, r.offset(i), Fingerprint::of(&[0xf1, i]), Tick(1));
        }
        host.thp_scan(Tick(1));
        assert!(host.huge_pages() >= HUGE_PAGE_SPAN, "{}", host.huge_pages());
        assert!(host.huge_mib() >= 2.0);
        host.mm().assert_consistent();
    }

    #[test]
    fn thp_scan_honors_policy_sides() {
        // Host `never`: nothing collapses no matter what guests hint.
        let mut host = KvmHost::new(HostConfig::paper_intel().scaled(16.0));
        host.set_thp_policies(ThpPolicy::Never, ThpPolicy::Always);
        host.create_guest("vm1", 16.0, &OsImage::tiny_test(), 1, Tick(0));
        host.thp_scan(Tick(1));
        assert_eq!(host.huge_pages(), 0);

        // Host `madvise` + guest `never`: no hints, so no collapses.
        let mut host = KvmHost::new(HostConfig::paper_intel().scaled(16.0));
        host.set_thp_policies(ThpPolicy::Madvise, ThpPolicy::Never);
        host.create_guest("vm1", 16.0, &OsImage::tiny_test(), 1, Tick(0));
        host.thp_scan(Tick(1));
        assert_eq!(host.huge_pages(), 0);
    }

    #[test]
    fn thp_scan_madvise_follows_guest_hints() {
        let mut host = KvmHost::new(HostConfig::paper_intel().scaled(16.0));
        host.set_thp_policies(ThpPolicy::Madvise, ThpPolicy::Madvise);
        host.create_guest("vm1", 16.0, &OsImage::tiny_test(), 1, Tick(0));
        host.thp_scan(Tick(1));
        assert_eq!(host.huge_pages(), 0, "no heap faulted yet");
        // A Java-heap huge fault produces a hint khugepaged honors.
        let (mm, guest) = host.mm_and_guest_mut(0);
        let pid = guest.os.spawn("java");
        let heap = guest
            .os
            .add_region(pid, 2 * HUGE_PAGE_SPAN, MemTag::JavaHeap);
        guest
            .os
            .write_page(mm, pid, heap, Fingerprint::of(&[1]), Tick(2));
        assert_eq!(guest.os.huge_hint_blocks().count(), 1);
        host.thp_scan(Tick(3));
        assert_eq!(host.huge_pages(), HUGE_PAGE_SPAN);
        host.mm().assert_consistent();
    }

    #[test]
    fn kernel_churn_ticks_run() {
        let mut host = host_with_two_guests();
        // tiny_test image has zero churn; this exercises the path.
        let writes = host.mm().phys().total_writes();
        host.tick(Tick(10));
        assert!(host.mm().phys().total_writes() >= writes);
    }
}
