//! The Java heap: moving collection, zero-filling, allocation churn.
//!
//! Sharing-relevant behaviour (§III.B of the paper):
//!
//! * live data is process-private (pointers, headers) — modelled as
//!   process-salted page contents that can never match another process;
//! * the collector zero-fills freed space, briefly creating mergeable
//!   all-zero pages that the mutator soon overwrites ("these shared areas
//!   are soon modified and divided");
//! * moving objects re-salts pages with a GC epoch, so even logically
//!   read-only data never stays page-identical across processes.

use crate::fill::ProgressFill;
use crate::profile::{GcPolicy, HeapProfile};
use mem::{Fingerprint, Tick};
use obs::EventKind;
use oskernel::{GuestOs, Pid};
use paging::{MemSink, MemTag, Vpn};

const HEAP_TOKEN: u64 = 0x4ea9;

/// One contiguous collected space (the whole heap for the flat policy;
/// nursery or tenured for the generational policy).
#[derive(Debug)]
struct Space {
    base: Vpn,
    pages: usize,
    live_pages: usize,
    /// Allocation high-water mark: pages in `[hwm, pages)` are
    /// zero-filled once when the heap reaches steady state and never
    /// touched again — the durable all-zero pages behind the paper's
    /// 0.7 % heap sharing.
    hwm: usize,
    /// Next free page to allocate into (index within the space,
    /// `live_pages ..= hwm`).
    cursor: usize,
    fill: ProgressFill,
    tail_written: bool,
    epoch: u64,
    collections: u64,
}

impl Space {
    fn new(
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        pages: usize,
        live_fraction: f64,
        untouched_fraction: f64,
        phase_salt: u64,
    ) -> Space {
        let pages = pages.max(2);
        let base = guest.map_region(mm, pid, pages, MemTag::JavaHeap);
        let live_pages = ((pages as f64) * live_fraction.clamp(0.0, 0.95)) as usize;
        let tail = ((pages as f64) * untouched_fraction.clamp(0.0, 0.5)) as usize;
        let hwm = (pages - tail).max(live_pages + 1).min(pages);
        // Start the allocation cursor at a salt-derived phase so identical
        // VMs do not collect in lockstep (their request streams are not
        // synchronized in reality either).
        let free = hwm - live_pages;
        let cursor = live_pages
            + if free > 0 {
                (phase_salt % free as u64) as usize
            } else {
                0
            };
        Space {
            base,
            pages,
            live_pages,
            hwm,
            cursor,
            fill: ProgressFill::new(live_pages),
            tail_written: false,
            epoch: 0,
            collections: 0,
        }
    }

    fn free_pages(&self) -> usize {
        self.hwm - self.live_pages
    }

    /// Gradually populate the live set during warm-up.
    fn warmup(
        &mut self,
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        salt: u64,
        fraction: f64,
        now: Tick,
    ) {
        for i in self.fill.advance(fraction) {
            let fp = Fingerprint::of(&[HEAP_TOKEN, salt, i as u64, 0]);
            guest.write_page(mm, pid, self.base.offset(i as u64), fp, now);
        }
        if fraction >= 1.0 && !self.tail_written {
            // First-touch of the committed-but-never-reused tail: the
            // allocator zeroes it when committing the heap.
            self.tail_written = true;
            for i in self.hwm..self.pages {
                guest.write_page(mm, pid, self.base.offset(i as u64), Fingerprint::ZERO, now);
            }
        }
    }

    /// Allocates `count` pages, collecting when the space fills. Returns
    /// the number of collections triggered.
    fn allocate(
        &mut self,
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        salt: u64,
        mut count: usize,
        now: Tick,
    ) -> u64 {
        if self.free_pages() == 0 {
            return 0;
        }
        let mut collections = 0;
        while count > 0 {
            if self.cursor >= self.hwm {
                self.collect(mm, guest, pid, now);
                collections += 1;
            }
            let fp = Fingerprint::of(&[HEAP_TOKEN, salt, self.cursor as u64, self.epoch + 1]);
            guest.write_page(mm, pid, self.base.offset(self.cursor as u64), fp, now);
            self.cursor += 1;
            count -= 1;
        }
        collections
    }

    /// Stop-the-world collection: all garbage in the free area dies and
    /// the space is zero-filled for reuse.
    fn collect(&mut self, mm: &mut impl MemSink, guest: &mut GuestOs, pid: Pid, now: Tick) {
        for i in self.live_pages..self.hwm {
            guest.write_page(mm, pid, self.base.offset(i as u64), Fingerprint::ZERO, now);
        }
        mm.trace(|| EventKind::GcCollect {
            pid: pid.0,
            gvpn: self.base.offset(self.live_pages as u64).0,
            zeroed_pages: (self.hwm - self.live_pages) as u64,
        });
        self.cursor = self.live_pages;
        self.epoch += 1;
        self.collections += 1;
    }
}

/// The heap simulator driven by [`JavaVm`](crate::JavaVm).
#[derive(Debug)]
pub(crate) struct HeapSim {
    profile: HeapProfile,
    nursery: Space,
    /// Tenured space (generational policy only).
    tenured: Option<Space>,
    /// Survivor pages promoted per nursery collection.
    promote_per_gc: usize,
    alloc_carry: f64,
}

impl HeapSim {
    pub(crate) fn launch(
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        profile: &HeapProfile,
        phase_salt: u64,
    ) -> HeapSim {
        match profile.policy {
            GcPolicy::Flat => {
                let pages = mem::mib_to_pages(profile.heap_mib);
                let nursery = Space::new(
                    mm,
                    guest,
                    pid,
                    pages,
                    profile.live_fraction,
                    profile.untouched_fraction,
                    phase_salt,
                );
                HeapSim {
                    profile: profile.clone(),
                    nursery,
                    tenured: None,
                    promote_per_gc: 0,
                    alloc_carry: 0.0,
                }
            }
            GcPolicy::Generational {
                nursery_mib,
                tenured_mib,
            } => {
                // The nursery's "live" part is the survivor residue; the
                // long-lived data sits in the tenured space.
                let nursery_pages = mem::mib_to_pages(nursery_mib);
                let tenured_pages = mem::mib_to_pages(tenured_mib);
                let nursery = Space::new(
                    mm,
                    guest,
                    pid,
                    nursery_pages,
                    0.08,
                    profile.untouched_fraction,
                    phase_salt,
                );
                let tenured = Space::new(
                    mm,
                    guest,
                    pid,
                    tenured_pages,
                    profile.live_fraction,
                    profile.untouched_fraction,
                    phase_salt / 7,
                );
                let promote_per_gc = (nursery_pages / 64).max(1);
                HeapSim {
                    profile: profile.clone(),
                    nursery,
                    tenured: Some(tenured),
                    promote_per_gc,
                    alloc_carry: 0.0,
                }
            }
        }
    }

    pub(crate) fn tick(
        &mut self,
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        salt: u64,
        warmup_fraction: f64,
        now: Tick,
    ) {
        self.warm(mm, guest, pid, salt, warmup_fraction, now);
        self.serve(
            mm,
            guest,
            pid,
            salt,
            mem::mib_to_pages(self.profile.alloc_mib_per_sec) as f64 / mem::TICKS_PER_SECOND as f64,
            now,
        );
    }

    /// Populates the live set up to `warmup_fraction` (start-up only;
    /// already-written pages are never rewritten).
    pub(crate) fn warm(
        &mut self,
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        salt: u64,
        warmup_fraction: f64,
        now: Tick,
    ) {
        self.nursery
            .warmup(mm, guest, pid, salt, warmup_fraction, now);
        if let Some(tenured) = &mut self.tenured {
            tenured.warmup(mm, guest, pid, salt ^ 0x7e4, warmup_fraction, now);
        }
    }

    /// Allocates `pages` (fractional amounts carry over), collecting and
    /// promoting survivors as spaces fill — the request-driven GC
    /// pressure path.
    pub(crate) fn serve(
        &mut self,
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        salt: u64,
        pages: f64,
        now: Tick,
    ) {
        self.alloc_carry += pages;
        let count = self.alloc_carry as usize;
        self.alloc_carry -= count as f64;
        let minor_gcs = self.nursery.allocate(mm, guest, pid, salt, count, now);
        if minor_gcs > 0 {
            if let Some(tenured) = &mut self.tenured {
                // Survivors are promoted: moving writes into the tenured
                // allocation frontier.
                let promoted = self.promote_per_gc * minor_gcs as usize;
                tenured.allocate(mm, guest, pid, salt ^ 0x7e4, promoted, now);
            }
        }
    }

    /// Collections so far (minor + major).
    pub(crate) fn gc_count(&self) -> u64 {
        self.nursery.collections + self.tenured.as_ref().map_or(0, |t| t.collections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oskernel::OsImage;
    use paging::HostMm;

    fn setup() -> (HostMm, GuestOs, Pid) {
        let mut mm = HostMm::new();
        let space = mm.create_space("vm");
        let mut guest = GuestOs::boot(
            &mut mm,
            space,
            mem::mib_to_pages(64.0),
            &OsImage::tiny_test(),
            1,
            Tick(0),
        );
        let pid = guest.spawn("java");
        (mm, guest, pid)
    }

    fn flat_profile() -> HeapProfile {
        HeapProfile {
            heap_mib: 2.0,
            policy: GcPolicy::Flat,
            live_fraction: 0.5,
            alloc_mib_per_sec: 4.0,
            untouched_fraction: 0.05,
        }
    }

    #[test]
    fn warmup_fills_live_set_once() {
        let (mut mm, mut guest, pid) = setup();
        let mut heap = HeapSim::launch(&mut mm, &mut guest, pid, &flat_profile(), 0);
        let before = mm.phys().allocated_frames();
        heap.nursery
            .warmup(&mut mm, &mut guest, pid, 1, 1.0, Tick(1));
        let after = mm.phys().allocated_frames();
        // Live set plus the zeroed never-reused tail fault in.
        let tail = heap.nursery.pages - heap.nursery.hwm;
        assert!(tail > 0);
        assert_eq!(after - before, heap.nursery.live_pages + tail);
        // Re-warming writes nothing.
        let writes = mm.phys().total_writes();
        heap.nursery
            .warmup(&mut mm, &mut guest, pid, 1, 1.0, Tick(2));
        assert_eq!(mm.phys().total_writes(), writes);
    }

    #[test]
    fn allocation_triggers_gc_and_zero_fills() {
        let (mut mm, mut guest, pid) = setup();
        let mut heap = HeapSim::launch(&mut mm, &mut guest, pid, &flat_profile(), 0);
        // Run long enough to wrap the free space several times.
        for t in 1..200u64 {
            heap.tick(&mut mm, &mut guest, pid, 1, 1.0, Tick(t));
        }
        assert!(heap.gc_count() >= 2, "gc_count = {}", heap.gc_count());
        // Immediately after the last tick some zero pages exist between
        // the allocation cursor and the end of the space.
        let space = &heap.nursery;
        let mut zeros = 0;
        for i in space.cursor..space.hwm {
            if guest.fingerprint_at(&mm, pid, space.base.offset(i as u64))
                == Some(Fingerprint::ZERO)
            {
                zeros += 1;
            }
        }
        assert_eq!(zeros, space.hwm - space.cursor);
        mm.assert_consistent();
    }

    #[test]
    fn allocated_pages_are_salted_per_process_and_epoch() {
        let (mut mm, mut guest, pid) = setup();
        let mut h1 = HeapSim::launch(&mut mm, &mut guest, pid, &flat_profile(), 0);
        let pid2 = guest.spawn("java2");
        let mut h2 = HeapSim::launch(&mut mm, &mut guest, pid2, &flat_profile(), 0);
        for t in 1..50u64 {
            h1.tick(&mut mm, &mut guest, pid, 1, 1.0, Tick(t));
            h2.tick(&mut mm, &mut guest, pid2, 2, 1.0, Tick(t));
        }
        // Same logical page, different process salt → different content.
        let p1 = guest
            .fingerprint_at(&mm, pid, h1.nursery.base.offset(0))
            .unwrap();
        let p2 = guest
            .fingerprint_at(&mm, pid2, h2.nursery.base.offset(0))
            .unwrap();
        assert_ne!(p1, p2);
    }

    #[test]
    fn generational_promotes_into_tenured() {
        let (mut mm, mut guest, pid) = setup();
        let profile = HeapProfile {
            heap_mib: 3.0,
            policy: GcPolicy::Generational {
                nursery_mib: 2.0,
                tenured_mib: 1.0,
            },
            live_fraction: 0.5,
            alloc_mib_per_sec: 8.0,
            untouched_fraction: 0.0,
        };
        let mut heap = HeapSim::launch(&mut mm, &mut guest, pid, &profile, 0);
        let tenured_cursor_before = heap.tenured.as_ref().unwrap().cursor;
        for t in 1..400u64 {
            heap.tick(&mut mm, &mut guest, pid, 1, 1.0, Tick(t));
        }
        assert!(heap.gc_count() > 0);
        let tenured = heap.tenured.as_ref().unwrap();
        assert!(
            tenured.cursor > tenured_cursor_before || tenured.collections > 0,
            "promotion should advance the tenured frontier"
        );
    }

    #[test]
    fn full_live_fraction_never_collects() {
        let (mut mm, mut guest, pid) = setup();
        let mut profile = flat_profile();
        profile.live_fraction = 1.0; // clamped to 0.95 internally, free > 0
        profile.alloc_mib_per_sec = 0.0;
        let mut heap = HeapSim::launch(&mut mm, &mut guest, pid, &profile, 0);
        for t in 1..50u64 {
            heap.tick(&mut mm, &mut guest, pid, 1, 1.0, Tick(t));
        }
        assert_eq!(heap.gc_count(), 0);
    }
}
