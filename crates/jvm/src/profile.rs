//! Workload profiles: the knobs that differ between DayTrader,
//! SPECjEnterprise 2010, TPC-W and Tuscany.

/// Garbage collection policy (§V.C uses both).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GcPolicy {
    /// One flat space with stop-the-world collection and compaction.
    Flat,
    /// Generational: a cycling nursery plus a tenured space
    /// (the SPECjEnterprise configuration: 530 MB nursery + 200 MB
    /// tenured).
    Generational {
        /// Nursery (allocation) space, MiB.
        nursery_mib: f64,
        /// Tenured space, MiB.
        tenured_mib: f64,
    },
}

/// Java heap configuration and mutator behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct HeapProfile {
    /// Committed heap size, MiB (-Xms = -Xmx in all the paper's runs).
    pub heap_mib: f64,
    /// Collection policy.
    pub policy: GcPolicy,
    /// Long-lived fraction of the heap (survives collections).
    pub live_fraction: f64,
    /// Steady-state allocation rate, MiB per simulated second.
    pub alloc_mib_per_sec: f64,
    /// Fraction of the committed heap above the allocation high-water
    /// mark: zero-filled once and never touched again. These are the
    /// durable all-zero pages behind the paper's "0.7 % of the Java heap
    /// was shared, mostly pages filled with zeros".
    pub untouched_fraction: f64,
}

/// Everything the JVM model needs to know about one Java application.
///
/// Presets for the paper's four benchmarks live in the `workloads` crate;
/// [`AppProfile::tiny_test`] is a miniature profile for unit tests.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Display name.
    pub name: String,
    /// Seed for workload-determined content (application class bytes,
    /// NIO wire data). Two VMs running the same benchmark share this id —
    /// that is what makes their NIO buffers and class-byte *contents*
    /// identical even when layouts differ.
    pub workload_id: u64,
    /// Identity of the hosting middleware (WAS, Tuscany). Benchmarks with
    /// equal `middleware_id` load byte-identical middleware classes —
    /// which is why the paper's Fig. 5(b) shows class sharing across VMs
    /// running *different* applications in the same WAS.
    pub middleware_id: u64,
    /// Number of classes loaded (middleware + application).
    pub class_count: usize,
    /// Mean size of a class's read-only half (bytecode, constant pool).
    pub avg_class_ro_bytes: usize,
    /// Mean size of a class's writable half (method tables, statics).
    pub avg_class_rw_bytes: usize,
    /// Fraction of the class population that is middleware/system classes
    /// (cache-eligible); the rest are application classes, which the
    /// paper's EJB class loaders cannot preload (§V.A).
    pub cacheable_fraction: f64,
    /// Wall-clock seconds over which class loading is spread.
    pub class_load_seconds: f64,
    /// Mapped JVM/library text, MiB — identical across processes.
    pub code_text_mib: f64,
    /// Library data areas, MiB — private per process.
    pub code_data_mib: f64,
    /// JIT code cache, MiB (profile-salted, never shareable).
    pub jit_code_mib: f64,
    /// JIT scratch, MiB (volatile while compiling).
    pub jit_work_mib: f64,
    /// Bulk-reserved, still-zero part of the JIT work area, MiB.
    pub jit_work_zero_mib: f64,
    /// Seconds of JIT warm-up activity.
    pub jit_warmup_seconds: f64,
    /// JIT scratch rewrite rate during warm-up, MiB/s.
    pub jit_churn_mib_per_sec: f64,
    /// JVM work area structures, MiB (private).
    pub work_data_mib: f64,
    /// Bulk-zeroed malloc-arena tails, MiB.
    pub work_zero_mib: f64,
    /// NIO socket buffers, MiB (workload-content: identical across VMs
    /// running the same benchmark against the same driver).
    pub nio_mib: f64,
    /// Steady rewrite rate inside the work area, MiB/s.
    pub work_churn_mib_per_sec: f64,
    /// Thread stacks, MiB.
    pub stack_mib: f64,
    /// Fraction of stack pages rewritten per second.
    pub stack_churn_per_sec: f64,
    /// Heap configuration.
    pub heap: HeapProfile,
}

impl AppProfile {
    /// A miniature profile (a few MiB) for fast unit tests.
    #[must_use]
    pub fn tiny_test() -> AppProfile {
        AppProfile {
            name: "tiny".into(),
            workload_id: 0x7e57_0001,
            middleware_id: 0x7e57_31dd,
            class_count: 40,
            avg_class_ro_bytes: 6_000,
            avg_class_rw_bytes: 800,
            cacheable_fraction: 0.9,
            class_load_seconds: 5.0,
            code_text_mib: 1.0,
            code_data_mib: 0.5,
            jit_code_mib: 0.5,
            jit_work_mib: 0.25,
            jit_work_zero_mib: 0.125,
            jit_warmup_seconds: 8.0,
            jit_churn_mib_per_sec: 0.1,
            work_data_mib: 0.5,
            work_zero_mib: 0.125,
            nio_mib: 0.25,
            work_churn_mib_per_sec: 0.05,
            stack_mib: 0.25,
            stack_churn_per_sec: 0.5,
            heap: HeapProfile {
                heap_mib: 4.0,
                policy: GcPolicy::Flat,
                live_fraction: 0.6,
                alloc_mib_per_sec: 1.0,
                untouched_fraction: 0.05,
            },
        }
    }

    /// Returns a copy with all sizes divided by `divisor` (the experiment
    /// scale knob — proportions, and therefore sharing percentages, are
    /// preserved).
    ///
    /// # Panics
    ///
    /// Panics if `divisor < 1`.
    #[must_use]
    pub fn scaled(&self, divisor: f64) -> AppProfile {
        assert!(divisor >= 1.0, "scale divisor must be >= 1");
        let d = divisor;
        AppProfile {
            name: self.name.clone(),
            workload_id: self.workload_id,
            middleware_id: self.middleware_id,
            class_count: ((self.class_count as f64 / d).ceil() as usize).max(1),
            avg_class_ro_bytes: self.avg_class_ro_bytes,
            avg_class_rw_bytes: self.avg_class_rw_bytes,
            cacheable_fraction: self.cacheable_fraction,
            class_load_seconds: self.class_load_seconds,
            code_text_mib: self.code_text_mib / d,
            code_data_mib: self.code_data_mib / d,
            jit_code_mib: self.jit_code_mib / d,
            jit_work_mib: self.jit_work_mib / d,
            jit_work_zero_mib: self.jit_work_zero_mib / d,
            jit_warmup_seconds: self.jit_warmup_seconds,
            jit_churn_mib_per_sec: self.jit_churn_mib_per_sec / d,
            work_data_mib: self.work_data_mib / d,
            work_zero_mib: self.work_zero_mib / d,
            nio_mib: self.nio_mib / d,
            work_churn_mib_per_sec: self.work_churn_mib_per_sec / d,
            stack_mib: self.stack_mib / d,
            stack_churn_per_sec: self.stack_churn_per_sec,
            heap: HeapProfile {
                heap_mib: self.heap.heap_mib / d,
                policy: match self.heap.policy {
                    GcPolicy::Flat => GcPolicy::Flat,
                    GcPolicy::Generational {
                        nursery_mib,
                        tenured_mib,
                    } => GcPolicy::Generational {
                        nursery_mib: nursery_mib / d,
                        tenured_mib: tenured_mib / d,
                    },
                },
                live_fraction: self.heap.live_fraction,
                alloc_mib_per_sec: self.heap.alloc_mib_per_sec / d,
                untouched_fraction: self.heap.untouched_fraction,
            },
        }
    }

    /// Total modelled footprint, MiB (sum of all areas at full residency).
    #[must_use]
    pub fn footprint_mib(&self) -> f64 {
        let class_mib = self.class_count as f64
            * (self.avg_class_ro_bytes + self.avg_class_rw_bytes) as f64
            / (1024.0 * 1024.0);
        self.code_text_mib
            + self.code_data_mib
            + class_mib
            + self.jit_code_mib
            + self.jit_work_mib
            + self.jit_work_zero_mib
            + self.work_data_mib
            + self.work_zero_mib
            + self.nio_mib
            + self.stack_mib
            + self.heap.heap_mib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_divides_sizes_not_fractions() {
        let p = AppProfile::tiny_test();
        let s = p.scaled(2.0);
        assert!((s.heap.heap_mib - p.heap.heap_mib / 2.0).abs() < 1e-9);
        assert_eq!(s.cacheable_fraction, p.cacheable_fraction);
        assert_eq!(s.workload_id, p.workload_id);
        assert!(s.footprint_mib() < p.footprint_mib());
    }

    #[test]
    #[should_panic(expected = "scale divisor")]
    fn upscaling_rejected() {
        let _ = AppProfile::tiny_test().scaled(0.9);
    }

    #[test]
    fn footprint_is_positive_and_dominated_by_heap() {
        let p = AppProfile::tiny_test();
        assert!(p.footprint_mib() > p.heap.heap_mib);
    }

    #[test]
    fn generational_scaling() {
        let mut p = AppProfile::tiny_test();
        p.heap.policy = GcPolicy::Generational {
            nursery_mib: 2.0,
            tenured_mib: 1.0,
        };
        match p.scaled(2.0).heap.policy {
            GcPolicy::Generational {
                nursery_mib,
                tenured_mib,
            } => {
                assert!((nursery_mib - 1.0).abs() < 1e-9);
                assert!((tenured_mib - 0.5).abs() < 1e-9);
            }
            GcPolicy::Flat => panic!("policy changed by scaling"),
        }
    }
}
