//! The code area: mapped executables and library data.

use crate::fill::ProgressFill;
use crate::profile::AppProfile;
use mem::{Fingerprint, Tick};
use oskernel::{GuestOs, Pid};
use paging::{MemSink, MemTag, Vpn};

const TEXT_TOKEN: u64 = 0xc0de;
const DATA_TOKEN: u64 = 0xda7a;

/// Code-area simulator.
///
/// The executable text "maps identical executable files as long as the
/// same version of the Java VM is in use" (§III.B) — text page contents
/// depend only on the JVM version, so every process (and every VM running
/// the same image) produces byte-identical pages at identical page
/// offsets, the one area the paper found TPS handles well out of the box.
/// Library *data* areas are relocated and written per process.
#[derive(Debug)]
pub(crate) struct CodeArea {
    #[cfg_attr(not(test), allow(dead_code))]
    text_base: Vpn,
    #[cfg_attr(not(test), allow(dead_code))]
    text_pages: usize,
    data_base: Vpn,
    data_fill: ProgressFill,
}

impl CodeArea {
    pub(crate) fn launch(
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        profile: &AppProfile,
        jvm_version: u64,
        now: Tick,
    ) -> CodeArea {
        let text_pages = mem::mib_to_pages(profile.code_text_mib).max(1);
        let data_pages = mem::mib_to_pages(profile.code_data_mib).max(1);
        let text_base = guest.add_region(pid, text_pages, MemTag::JavaCode);
        let data_base = guest.add_region(pid, data_pages, MemTag::JavaCode);
        // Text is demand-paged from the same binary: identical content at
        // identical offsets, mapped eagerly here (the dynamic loader
        // touches it all during startup relocation/warm-up).
        for i in 0..text_pages {
            let fp = Fingerprint::of(&[TEXT_TOKEN, jvm_version, i as u64]);
            guest.write_page(mm, pid, text_base.offset(i as u64), fp, now);
        }
        CodeArea {
            text_base,
            text_pages,
            data_base,
            data_fill: ProgressFill::new(data_pages),
        }
    }

    pub(crate) fn tick(
        &mut self,
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        salt: u64,
        startup_fraction: f64,
        now: Tick,
    ) {
        for i in self.data_fill.advance(startup_fraction) {
            let fp = Fingerprint::of(&[DATA_TOKEN, salt, i as u64]);
            guest.write_page(mm, pid, self.data_base.offset(i as u64), fp, now);
        }
    }

    #[cfg(test)]
    pub(crate) fn text_base(&self) -> Vpn {
        self.text_base
    }

    #[cfg(test)]
    pub(crate) fn text_pages(&self) -> usize {
        self.text_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oskernel::OsImage;
    use paging::HostMm;

    #[test]
    fn text_identical_across_processes_with_same_version() {
        let mut mm = HostMm::new();
        let space = mm.create_space("vm");
        let mut guest = GuestOs::boot(
            &mut mm,
            space,
            mem::mib_to_pages(64.0),
            &OsImage::tiny_test(),
            1,
            Tick(0),
        );
        let p1 = guest.spawn("java1");
        let p2 = guest.spawn("java2");
        let p3 = guest.spawn("java3");
        let profile = AppProfile::tiny_test();
        let c1 = CodeArea::launch(&mut mm, &mut guest, p1, &profile, 6, Tick(0));
        let c2 = CodeArea::launch(&mut mm, &mut guest, p2, &profile, 6, Tick(0));
        let c3 = CodeArea::launch(&mut mm, &mut guest, p3, &profile, 7, Tick(0)); // other JVM version
        for i in 0..c1.text_pages() {
            let f1 = guest.fingerprint_at(&mm, p1, c1.text_base().offset(i as u64));
            let f2 = guest.fingerprint_at(&mm, p2, c2.text_base().offset(i as u64));
            let f3 = guest.fingerprint_at(&mm, p3, c3.text_base().offset(i as u64));
            assert_eq!(f1, f2);
            assert_ne!(f1, f3);
        }
    }

    #[test]
    fn data_areas_are_private() {
        let mut mm = HostMm::new();
        let space = mm.create_space("vm");
        let mut guest = GuestOs::boot(
            &mut mm,
            space,
            mem::mib_to_pages(64.0),
            &OsImage::tiny_test(),
            1,
            Tick(0),
        );
        let p1 = guest.spawn("java1");
        let p2 = guest.spawn("java2");
        let profile = AppProfile::tiny_test();
        let mut c1 = CodeArea::launch(&mut mm, &mut guest, p1, &profile, 6, Tick(0));
        let mut c2 = CodeArea::launch(&mut mm, &mut guest, p2, &profile, 6, Tick(0));
        c1.tick(&mut mm, &mut guest, p1, 1, 1.0, Tick(1));
        c2.tick(&mut mm, &mut guest, p2, 2, 1.0, Tick(1));
        assert_ne!(
            guest.fingerprint_at(&mm, p1, c1.data_base),
            guest.fingerprint_at(&mm, p2, c2.data_base)
        );
    }
}
