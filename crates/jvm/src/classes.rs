//! The class population of a workload.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One Java class as the memory model sees it: an identity plus the sizes
/// of its read-only and writable halves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassSpec {
    /// Content identity of the class (stable across processes and VMs —
    /// the same jar file is installed everywhere).
    pub token: u64,
    /// Read-only half: bytecode, constant pool, string literals. This is
    /// what the shared class cache stores.
    pub ro_bytes: usize,
    /// Writable half: method tables, statics, resolution state. Always
    /// created privately by each JVM.
    pub rw_bytes: usize,
    /// Whether the class can be stored in the shared class cache.
    /// Middleware and system classes can; the paper's EJB application
    /// classes cannot (their class loaders are not cache-aware, §V.A).
    pub cacheable: bool,
}

/// The deterministic set of classes a workload loads, in canonical
/// (first-run) load order.
///
/// The population has two parts, mirroring §V.A ("around 90 % of
/// preloaded classes were those for WAS … only around 10 % were Java
/// system classes; the classes for the EJB applications were not
/// preloaded"):
///
/// * **Middleware classes** — derived from `middleware_id` alone, so two
///   *different* benchmarks hosted by the same middleware (DayTrader and
///   TPC-W in the same WAS) load byte-identical middleware classes in the
///   same canonical order. These are cache-eligible.
/// * **Application classes** — derived from `workload_id`, distinct per
///   benchmark, not cache-eligible.
///
/// # Example
///
/// ```
/// use jvm::ClassSet;
///
/// let daytrader = ClassSet::generate(1, 99, 100, 8_000, 1_000, 0.9);
/// let tpcw = ClassSet::generate(2, 99, 100, 8_000, 1_000, 0.9);
/// // Same WAS (middleware 99): identical middleware classes...
/// assert!(daytrader.cacheable().eq(tpcw.cacheable()));
/// // ...different application classes.
/// assert_ne!(daytrader.classes(), tpcw.classes());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSet {
    classes: Vec<ClassSpec>,
}

impl ClassSet {
    /// Generates `count` classes: the first `middleware_fraction` of the
    /// load order is the middleware population (determined by
    /// `middleware_id`), the rest are application classes (determined by
    /// `workload_id`).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `middleware_fraction` is outside
    /// `[0, 1]`.
    #[must_use]
    pub fn generate(
        workload_id: u64,
        middleware_id: u64,
        count: usize,
        avg_ro_bytes: usize,
        avg_rw_bytes: usize,
        middleware_fraction: f64,
    ) -> ClassSet {
        assert!(count > 0, "a workload loads at least one class");
        assert!(
            (0.0..=1.0).contains(&middleware_fraction),
            "middleware fraction must be in [0, 1]"
        );
        // Class sizes are right-skewed: many small classes, a few very
        // large generated/framework classes.
        let skew = |avg: usize, rng: &mut SmallRng| -> usize {
            let u: f64 = rng.gen_range(0.0..1.0);
            let factor = 0.25 + 2.2 * u * u;
            ((avg as f64) * factor).max(64.0) as usize
        };
        let mw_count = (count as f64 * middleware_fraction).round() as usize;
        let mut mw_rng = SmallRng::seed_from_u64(middleware_id ^ 0x31dd);
        let mut app_rng = SmallRng::seed_from_u64(workload_id ^ 0x0c1a_55e5);
        let classes = (0..count)
            .map(|i| {
                let middleware = i < mw_count;
                let (seed, rng) = if middleware {
                    (middleware_id, &mut mw_rng)
                } else {
                    (workload_id, &mut app_rng)
                };
                ClassSpec {
                    token: mem::Fingerprint::of(&[0xc1a55, seed, i as u64]).as_u128() as u64,
                    ro_bytes: skew(avg_ro_bytes, rng),
                    rw_bytes: skew(avg_rw_bytes, rng),
                    cacheable: middleware,
                }
            })
            .collect();
        ClassSet { classes }
    }

    /// Generates the class set described by an
    /// [`AppProfile`](crate::AppProfile).
    #[must_use]
    pub fn for_profile(profile: &crate::AppProfile) -> ClassSet {
        ClassSet::generate(
            profile.workload_id,
            profile.middleware_id,
            profile.class_count,
            profile.avg_class_ro_bytes,
            profile.avg_class_rw_bytes,
            profile.cacheable_fraction,
        )
    }

    /// The classes in canonical load order.
    #[must_use]
    pub fn classes(&self) -> &[ClassSpec] {
        &self.classes
    }

    /// Number of classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// `true` if the set is empty (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Total read-only bytes across all classes.
    #[must_use]
    pub fn total_ro_bytes(&self) -> usize {
        self.classes.iter().map(|c| c.ro_bytes).sum()
    }

    /// Total writable bytes across all classes.
    #[must_use]
    pub fn total_rw_bytes(&self) -> usize {
        self.classes.iter().map(|c| c.rw_bytes).sum()
    }

    /// Classes eligible for the shared class cache (the middleware
    /// population).
    pub fn cacheable(&self) -> impl Iterator<Item = &ClassSpec> {
        self.classes.iter().filter(|c| c.cacheable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn gen(workload: u64, mw: u64) -> ClassSet {
        ClassSet::generate(workload, mw, 100, 8000, 1000, 0.8)
    }

    #[test]
    fn deterministic_per_ids() {
        assert_eq!(gen(7, 1), gen(7, 1));
    }

    #[test]
    fn different_workloads_share_middleware_only() {
        let a = gen(7, 1);
        let b = gen(8, 1);
        let mw_a: Vec<_> = a.cacheable().collect();
        let mw_b: Vec<_> = b.cacheable().collect();
        assert_eq!(mw_a, mw_b);
        assert_ne!(a, b);
        // App classes (the non-cacheable suffix) differ entirely.
        let app_a: HashSet<u64> = a
            .classes()
            .iter()
            .filter(|c| !c.cacheable)
            .map(|c| c.token)
            .collect();
        let app_b: HashSet<u64> = b
            .classes()
            .iter()
            .filter(|c| !c.cacheable)
            .map(|c| c.token)
            .collect();
        assert!(app_a.is_disjoint(&app_b));
    }

    #[test]
    fn different_middleware_differs() {
        assert_ne!(gen(7, 1), gen(7, 2));
    }

    #[test]
    fn tokens_are_unique() {
        let set = ClassSet::generate(7, 1, 500, 8000, 1000, 0.8);
        let tokens: HashSet<u64> = set.classes().iter().map(|c| c.token).collect();
        assert_eq!(tokens.len(), set.len());
    }

    #[test]
    fn cacheable_prefix() {
        let set = ClassSet::generate(7, 1, 100, 8000, 1000, 0.6);
        assert_eq!(set.cacheable().count(), 60);
        assert!(set.classes()[0].cacheable);
        assert!(!set.classes()[99].cacheable);
    }

    #[test]
    fn mean_sizes_are_near_target() {
        let set = ClassSet::generate(7, 1, 2000, 8000, 1000, 1.0);
        let mean_ro = set.total_ro_bytes() as f64 / set.len() as f64;
        assert!((mean_ro / 8000.0 - 1.0).abs() < 0.15, "mean ro {mean_ro}");
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_count_rejected() {
        let _ = ClassSet::generate(7, 1, 0, 1, 1, 1.0);
    }
}
