//! Per-request work: what serving one client request costs a JVM.
//!
//! The tick-scripted model drove allocation, JIT warm-up and page
//! dirtying on fixed per-second rates. Under the request-driven traffic
//! engine those same rates are re-expressed *per request*, so memory
//! behaviour — and therefore the sharing KSM can find — becomes a
//! function of offered load: an idle JVM stops churning (its volatile
//! pages settle and merge), a flash crowd multiplies the churn (merged
//! pages divide), and JIT code-cache growth tracks traffic warm-up
//! rather than wall-clock time.

use crate::profile::AppProfile;

/// The memory side effects of serving one request, in pages (fractional
/// values accumulate across requests and are applied whole).
///
/// Derived from an [`AppProfile`]'s per-second rates at the workload's
/// healthy request rate, so a JVM serving exactly its healthy load
/// reproduces the tick model's churn; anything else scales with traffic.
///
/// # Example
///
/// ```
/// use jvm::{AppProfile, RequestCost};
///
/// let cost = RequestCost::for_profile(&AppProfile::tiny_test(), 4.0);
/// assert!(cost.heap_alloc_pages > 0.0);
/// assert!(cost.jit_warm_delta > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestCost {
    /// Java-heap pages allocated (young-generation pressure; triggers
    /// collections when the space fills).
    pub heap_alloc_pages: f64,
    /// Progress toward full JIT code-cache population contributed by
    /// this request (methods get hot by being called, not by waiting).
    pub jit_warm_delta: f64,
    /// JIT scratch pages rewritten (compilation work rides on traffic).
    pub jit_scratch_pages: f64,
    /// JVM work-area pages rewritten (string tables, monitors, …).
    pub work_dirty_pages: f64,
    /// Progress toward filling the NIO buffers with request/response
    /// bytes (workload-determined content, identical across VMs).
    pub nio_delta: f64,
    /// Stack pages rewritten by the request's call chain.
    pub stack_dirty_pages: f64,
}

/// Requests after which the JIT code cache is fully warm — calibrated so
/// a JVM at its healthy rate warms in roughly the profile's
/// `jit_warmup_seconds`, matching the tick model's wall-clock schedule.
fn warmup_requests(healthy_rps: f64, warmup_seconds: f64) -> f64 {
    healthy_rps * warmup_seconds
}

impl RequestCost {
    /// Derives the per-request cost from `profile`'s per-second rates at
    /// a healthy rate of `healthy_rps` requests per second.
    ///
    /// # Panics
    ///
    /// Panics if `healthy_rps` is not strictly positive.
    #[must_use]
    pub fn for_profile(profile: &AppProfile, healthy_rps: f64) -> RequestCost {
        assert!(
            healthy_rps > 0.0,
            "healthy request rate must be positive, got {healthy_rps}"
        );
        let per_req = |mib_per_sec: f64| mem::mib_to_pages(mib_per_sec) as f64 / healthy_rps;
        let warm = warmup_requests(healthy_rps, profile.jit_warmup_seconds);
        RequestCost {
            heap_alloc_pages: per_req(profile.heap.alloc_mib_per_sec),
            jit_warm_delta: if warm > 0.0 { 1.0 / warm } else { 1.0 },
            jit_scratch_pages: per_req(profile.jit_churn_mib_per_sec),
            work_dirty_pages: per_req(profile.work_churn_mib_per_sec),
            nio_delta: 1.0 / (healthy_rps * 30.0).max(1.0),
            stack_dirty_pages: profile.stack_churn_per_sec
                * mem::mib_to_pages(profile.stack_mib) as f64
                / healthy_rps,
        }
    }

    /// A copy of the cost scaled by `factor` (noisy-neighbor scenarios
    /// inflate one guest's per-request work).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> RequestCost {
        RequestCost {
            heap_alloc_pages: self.heap_alloc_pages * factor,
            jit_warm_delta: self.jit_warm_delta,
            jit_scratch_pages: self.jit_scratch_pages * factor,
            work_dirty_pages: self.work_dirty_pages * factor,
            nio_delta: self.nio_delta,
            stack_dirty_pages: self.stack_dirty_pages * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::AppProfile;

    #[test]
    fn healthy_rate_reproduces_tick_model_rates() {
        let p = AppProfile::tiny_test();
        let cost = RequestCost::for_profile(&p, 8.0);
        // 8 requests/s x pages/request == pages/s of the tick model.
        let heap_pages_per_sec = cost.heap_alloc_pages * 8.0;
        assert!(
            (heap_pages_per_sec - mem::mib_to_pages(p.heap.alloc_mib_per_sec) as f64).abs() < 1e-9
        );
    }

    #[test]
    fn warmup_progress_sums_to_one_over_the_warmup_window() {
        let p = AppProfile::tiny_test();
        let rps = 5.0;
        let cost = RequestCost::for_profile(&p, rps);
        let requests_to_warm = rps * p.jit_warmup_seconds;
        assert!((cost.jit_warm_delta * requests_to_warm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_inflates_churn_but_not_warmup() {
        let cost = RequestCost::for_profile(&AppProfile::tiny_test(), 4.0);
        let hot = cost.scaled(3.0);
        assert!((hot.heap_alloc_pages - 3.0 * cost.heap_alloc_pages).abs() < 1e-12);
        assert_eq!(hot.jit_warm_delta, cost.jit_warm_delta);
    }

    #[test]
    #[should_panic(expected = "healthy request rate")]
    fn zero_rate_rejected() {
        let _ = RequestCost::for_profile(&AppProfile::tiny_test(), 0.0);
    }
}
