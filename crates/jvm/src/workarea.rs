//! The JVM work area: private structures, NIO buffers, zeroed arena tails.

use crate::fill::ProgressFill;
use crate::profile::AppProfile;
use mem::{Fingerprint, Tick};
use oskernel::{GuestOs, Pid};
use paging::{MallocArena, MemSink, MemTag, PageSink, Vpn};

const WORK_TOKEN: u64 = 0x3041;
const NIO_TOKEN: u64 = 0x310;

/// Mean size of one JVM-internal malloc'd structure.
const MEAN_CHUNK_BYTES: usize = 7 * 1024;

/// A [`PageSink`] that materialises arena pages inside a guest process.
struct GuestSink<'a, M: MemSink> {
    mm: &'a mut M,
    guest: &'a mut GuestOs,
    pid: Pid,
    tag: MemTag,
    pages_hint: usize,
    first_base: Option<Vpn>,
}

impl<M: MemSink> PageSink for GuestSink<'_, M> {
    fn grow(&mut self, pages: usize) -> Vpn {
        let base = self
            .guest
            .add_region(self.pid, pages.max(self.pages_hint), self.tag);
        self.first_base.get_or_insert(base);
        base
    }
    fn write(&mut self, vpn: Vpn, fp: Fingerprint, now: Tick) {
        self.guest.write_page(self.mm, self.pid, vpn, fp, now);
    }
}

/// JVM work area simulator.
///
/// §III.A found three residual sources of sharing inside the otherwise
/// private "JVM and JIT work" area, and this module models all three:
///
/// 1. **NIO socket buffers** — the drivers send every VM the same request
///    stream and the database returns the same rows, so buffer *contents*
///    are workload-determined and identical across VMs (about half of the
///    observed sharing). The paper cautions this is benchmark luck, not a
///    property of real deployments.
/// 2. **Unused parts of malloc-arena blocks** — the zeroed tail of the
///    [`MallocArena`] block the internal structures are carved from.
/// 3. **Bulk-allocated, not-yet-used internal structures** — also zero.
#[derive(Debug)]
pub(crate) struct WorkArea {
    arena: MallocArena,
    data_base: Vpn,
    data_pages: usize,
    /// Bytes of structures still to allocate during start-up.
    bytes_remaining: usize,
    bytes_total: usize,
    alloc_seq: u64,
    nio_base: Vpn,
    nio_fill: ProgressFill,
    churn_cursor: u64,
    churn_carry: f64,
}

impl WorkArea {
    pub(crate) fn launch(
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        profile: &AppProfile,
        now: Tick,
    ) -> WorkArea {
        let data_pages = mem::mib_to_pages(profile.work_data_mib).max(1);
        let zero_pages = mem::mib_to_pages(profile.work_zero_mib);
        let nio_pages = mem::mib_to_pages(profile.nio_mib).max(1);
        let block_pages = data_pages + zero_pages.max(1);
        // The JVM's internal allocator grabs one arena block covering its
        // working structures; what start-up doesn't consume stays zero.
        let mut arena = MallocArena::new(block_pages);
        let mut sink = GuestSink {
            mm,
            guest,
            pid,
            tag: MemTag::JavaJvmWork,
            pages_hint: block_pages,
            first_base: None,
        };
        // Prime the block so the zero tail exists from the start.
        let first = arena.malloc(&mut sink, WORK_TOKEN, 64, now);
        let data_base = sink.first_base.expect("arena grew a block");
        debug_assert_eq!(first.base, data_base);
        let nio_base = guest.add_region(pid, nio_pages, MemTag::JavaJvmWork);
        let bytes_total = data_pages * mem::PAGE_SIZE - 4096;
        WorkArea {
            arena,
            data_base,
            data_pages,
            bytes_remaining: bytes_total,
            bytes_total,
            alloc_seq: 0,
            nio_base,
            nio_fill: ProgressFill::new(nio_pages),
            churn_cursor: 0,
            churn_carry: 0.0,
        }
    }

    #[allow(clippy::too_many_arguments)] // simulation context threading
    pub(crate) fn tick(
        &mut self,
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        profile: &AppProfile,
        salt: u64,
        startup_fraction: f64,
        nio_fraction: f64,
        now: Tick,
    ) {
        self.startup(mm, guest, pid, salt, startup_fraction, now);
        self.fill_nio(mm, guest, pid, profile, nio_fraction, now);
        self.churn(
            mm,
            guest,
            pid,
            salt,
            mem::mib_to_pages(profile.work_churn_mib_per_sec) as f64 / mem::TICKS_PER_SECOND as f64,
            now,
        );
    }

    /// Private structures materialise during start-up: a stream of
    /// salted malloc calls packed into the arena block.
    pub(crate) fn startup(
        &mut self,
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        salt: u64,
        startup_fraction: f64,
        now: Tick,
    ) {
        let target_remaining =
            ((1.0 - startup_fraction.clamp(0.0, 1.0)) * self.bytes_total as f64) as usize;
        while self.bytes_remaining > target_remaining {
            let len = MEAN_CHUNK_BYTES.min(self.bytes_remaining).max(64);
            self.alloc_seq += 1;
            let token = Fingerprint::of(&[WORK_TOKEN, salt, self.alloc_seq]).as_u128() as u64;
            let mut sink = GuestSink {
                mm,
                guest,
                pid,
                tag: MemTag::JavaJvmWork,
                pages_hint: 0,
                first_base: None,
            };
            self.arena.malloc(&mut sink, token, len, now);
            self.bytes_remaining -= len;
        }
    }

    /// NIO buffers fill with the first requests; contents derive from
    /// the workload (identical across VMs), not the process.
    pub(crate) fn fill_nio(
        &mut self,
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        profile: &AppProfile,
        nio_fraction: f64,
        now: Tick,
    ) {
        for i in self.nio_fill.advance(nio_fraction) {
            let fp = Fingerprint::of(&[NIO_TOKEN, profile.workload_id, i as u64]);
            guest.write_page(mm, pid, self.nio_base.offset(i as u64), fp, now);
        }
    }

    /// Rewrites `pages` of the hot slice of the private structures
    /// (string tables, monitor tables, …); fractions carry over.
    pub(crate) fn churn(
        &mut self,
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        salt: u64,
        pages: f64,
        now: Tick,
    ) {
        self.churn_carry += pages;
        let mut writes = self.churn_carry as usize;
        self.churn_carry -= writes as f64;
        // Only the first quarter of the data area is hot.
        let hot = (self.data_pages / 4).max(1);
        while writes > 0 {
            let i = self.churn_cursor % hot as u64;
            self.churn_cursor += 1;
            let fp = Fingerprint::of(&[WORK_TOKEN, salt, i, now.0]);
            guest.write_page(mm, pid, self.data_base.offset(i), fp, now);
            writes -= 1;
        }
    }

    /// Zero pages still unused at the arena tail.
    #[cfg(test)]
    pub(crate) fn zero_tail_pages(&self) -> usize {
        self.arena.zero_tail_pages()
    }

    #[cfg(test)]
    pub(crate) fn nio_base(&self) -> Vpn {
        self.nio_base
    }

    #[cfg(test)]
    pub(crate) fn data_base(&self) -> Vpn {
        self.data_base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oskernel::OsImage;
    use paging::HostMm;

    fn setup() -> (HostMm, GuestOs, Pid, Pid) {
        let mut mm = HostMm::new();
        let space = mm.create_space("vm");
        let mut guest = GuestOs::boot(
            &mut mm,
            space,
            mem::mib_to_pages(64.0),
            &OsImage::tiny_test(),
            1,
            Tick(0),
        );
        let p1 = guest.spawn("java1");
        let p2 = guest.spawn("java2");
        (mm, guest, p1, p2)
    }

    #[test]
    fn nio_content_identical_across_processes_private_data_differs() {
        let (mut mm, mut guest, p1, p2) = setup();
        let profile = AppProfile::tiny_test();
        let mut w1 = WorkArea::launch(&mut mm, &mut guest, p1, &profile, Tick(0));
        let mut w2 = WorkArea::launch(&mut mm, &mut guest, p2, &profile, Tick(0));
        w1.tick(&mut mm, &mut guest, p1, &profile, 1, 1.0, 1.0, Tick(1));
        w2.tick(&mut mm, &mut guest, p2, &profile, 2, 1.0, 1.0, Tick(1));
        // Same benchmark ⇒ same buffer bytes.
        assert_eq!(
            guest.fingerprint_at(&mm, p1, w1.nio_base()),
            guest.fingerprint_at(&mm, p2, w2.nio_base())
        );
        // Private structures are salted (and arena offsets differ anyway).
        assert_ne!(
            guest.fingerprint_at(&mm, p1, w1.data_base()),
            guest.fingerprint_at(&mm, p2, w2.data_base())
        );
    }

    #[test]
    fn arena_tail_stays_zero_after_startup() {
        let (mut mm, mut guest, p1, _) = setup();
        let profile = AppProfile::tiny_test();
        let mut w = WorkArea::launch(&mut mm, &mut guest, p1, &profile, Tick(0));
        w.tick(&mut mm, &mut guest, p1, &profile, 1, 1.0, 0.0, Tick(1));
        let zero_pages = mem::mib_to_pages(profile.work_zero_mib);
        assert!(w.zero_tail_pages() >= zero_pages, "{}", w.zero_tail_pages());
        // The tail pages really are zero.
        for i in 0..w.zero_tail_pages() {
            let vpn = w.data_base().offset((w.data_pages + i) as u64);
            assert_eq!(guest.fingerprint_at(&mm, p1, vpn), Some(Fingerprint::ZERO));
        }
    }

    #[test]
    fn startup_allocation_is_gradual() {
        let (mut mm, mut guest, p1, _) = setup();
        let profile = AppProfile::tiny_test();
        let mut w = WorkArea::launch(&mut mm, &mut guest, p1, &profile, Tick(0));
        w.tick(&mut mm, &mut guest, p1, &profile, 1, 0.5, 0.0, Tick(1));
        let half = w.arena.allocations();
        w.tick(&mut mm, &mut guest, p1, &profile, 1, 1.0, 0.0, Tick(2));
        assert!(w.arena.allocations() > half);
        assert_eq!(w.bytes_remaining, 0);
        // Further ticks allocate nothing more.
        let done = w.arena.allocations();
        w.tick(&mut mm, &mut guest, p1, &profile, 1, 1.0, 0.0, Tick(3));
        assert_eq!(w.arena.allocations(), done);
    }

    #[test]
    fn churn_rewrites_hot_slice_only() {
        let (mut mm, mut guest, p1, _) = setup();
        let mut profile = AppProfile::tiny_test();
        profile.work_churn_mib_per_sec = 4.0;
        let mut w = WorkArea::launch(&mut mm, &mut guest, p1, &profile, Tick(0));
        w.tick(&mut mm, &mut guest, p1, &profile, 1, 1.0, 0.0, Tick(1));
        let cold_index = w.data_pages as u64 - 1;
        let cold_before = guest.fingerprint_at(&mm, p1, w.data_base().offset(cold_index));
        for t in 2..40u64 {
            w.tick(&mut mm, &mut guest, p1, &profile, 1, 1.0, 0.0, Tick(t));
        }
        // Cold tail untouched by churn; hot head rewritten.
        assert_eq!(
            guest.fingerprint_at(&mm, p1, w.data_base().offset(cold_index)),
            cold_before
        );
    }
}
