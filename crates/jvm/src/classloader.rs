//! The class loader: execution-order private layout vs. shared-cache
//! mapping. This module is the heart of the reproduction.

use crate::classes::ClassSet;
use crate::fill::ProgressFill;
use cds::SharedClassCache;
use mem::{Fingerprint, LayoutImage, LayoutWriter, Tick};
use obs::EventKind;
use oskernel::{GuestOs, Pid};
use paging::{MemSink, MemTag, Vpn};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Window within which class-load order varies between processes: thread
/// scheduling and request arrival reorder nearby loads but not the
/// coarse phase structure of start-up.
const JITTER_WINDOW: usize = 8;

/// Derives the private (writable-half) token for a class in one process.
fn rw_token(class_token: u64, salt: u64) -> u64 {
    class_token ^ salt.rotate_left(17) ^ 0x5157
}

#[derive(Debug)]
struct CacheMapping {
    base: Vpn,
    pages: Vec<Fingerprint>,
    /// Cache page indices in first-touch order for this process.
    fault_order: Vec<u32>,
    fill: ProgressFill,
}

/// Loads a workload's classes into guest memory over the start-up phase.
///
/// Two modes, matching the paper §IV.B:
///
/// * **Baseline** — every class's read-only and writable halves are
///   malloc'd into class segments *in this process's load order* (the
///   canonical order perturbed by a per-process jitter window, plus
///   occasional interleaved allocations that shift offsets). Byte
///   contents of the read-only halves are identical across processes, but
///   the layouts differ, so page contents differ and TPS finds nothing.
/// * **Shared cache** — cacheable classes' read-only halves are *mapped*
///   from the shared class cache file, which is byte-identical in every
///   VM it was copied to; only the small writable halves (and classes
///   that missed the cache, e.g. the EJB application classes) go to the
///   private segments.
#[derive(Debug)]
pub struct ClassLoader {
    private_image: LayoutImage,
    private_base: Vpn,
    private_fill: ProgressFill,
    cache: Option<CacheMapping>,
    class_count: usize,
    cached_classes: usize,
    unloaded_pages: usize,
}

impl ClassLoader {
    /// Plans the load and reserves the regions. `shared_cache` is this
    /// guest's copy of the cache file, if class sharing is enabled.
    pub(crate) fn launch(
        guest: &mut GuestOs,
        pid: Pid,
        classes: &ClassSet,
        shared_cache: Option<&SharedClassCache>,
        process_salt: u64,
    ) -> ClassLoader {
        // This process's load order: canonical order with window jitter.
        let mut order: Vec<usize> = (0..classes.len()).collect();
        let mut rng = SmallRng::seed_from_u64(process_salt ^ 0x10ad);
        for chunk in order.chunks_mut(JITTER_WINDOW) {
            // Fisher–Yates within the window.
            for i in (1..chunk.len()).rev() {
                chunk.swap(i, rng.gen_range(0..=i));
            }
        }

        // Lay out the private class segments in that order.
        let mut writer = LayoutWriter::new();
        let mut cached_classes = 0usize;
        let mut fault_pages: Vec<u32> = Vec::new();
        let mut seen = vec![false; shared_cache.map_or(0, |c| c.image().len_pages())];
        for &idx in &order {
            let class = classes.classes()[idx];
            let cached = shared_cache.and_then(|c| c.entry(class.token));
            match cached {
                Some(entry) => {
                    cached_classes += 1;
                    for page in entry.page_range() {
                        if !seen[page] {
                            seen[page] = true;
                            fault_pages.push(page as u32);
                        }
                    }
                }
                None => {
                    writer.align_to(8);
                    writer.append(class.token, class.ro_bytes);
                }
            }
            // The writable half is always private.
            writer.align_to(8);
            writer.append(rw_token(class.token, process_salt), class.rw_bytes.max(16));
            // Interleaved allocations from other subsystems shift
            // subsequent offsets unpredictably.
            if rng.gen_bool(0.35) {
                writer.pad(rng.gen_range(8..=192));
            }
        }
        let private_image = writer.finish();
        let private_pages = private_image.len_pages();
        let private_base = guest.add_region(pid, private_pages.max(1), MemTag::JavaClassMetadata);
        let cache = shared_cache.map(|c| {
            let pages = c.image().pages.clone();
            let base = guest.add_region(pid, pages.len().max(1), MemTag::JavaSharedClassCache);
            let fill = ProgressFill::new(fault_pages.len());
            CacheMapping {
                base,
                pages,
                fault_order: fault_pages,
                fill,
            }
        });
        ClassLoader {
            private_image,
            private_base,
            private_fill: ProgressFill::new(private_pages),
            cache,
            class_count: classes.len(),
            cached_classes,
            unloaded_pages: 0,
        }
    }

    /// Advances loading to `fraction` of the start-up phase.
    pub(crate) fn tick(
        &mut self,
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        fraction: f64,
        now: Tick,
    ) {
        let mut private_pages = 0u64;
        for i in self.private_fill.advance(fraction) {
            let fp = self.private_image.pages[i];
            guest.write_page(mm, pid, self.private_base.offset(i as u64), fp, now);
            private_pages += 1;
        }
        if private_pages > 0 {
            mm.trace(|| EventKind::ClassLoad {
                pid: pid.0,
                pages: private_pages,
                from_cache: false,
            });
        }
        if let Some(cache) = &mut self.cache {
            let mut cache_pages = 0u64;
            for i in cache.fill.advance(fraction) {
                let page = cache.fault_order[i] as usize;
                guest.write_page(
                    mm,
                    pid,
                    cache.base.offset(page as u64),
                    cache.pages[page],
                    now,
                );
                cache_pages += 1;
            }
            if cache_pages > 0 {
                mm.trace(|| EventKind::ClassLoad {
                    pid: pid.0,
                    pages: cache_pages,
                    from_cache: true,
                });
            }
        }
    }

    /// Number of classes this loader will load.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Classes satisfied from the shared cache.
    #[must_use]
    pub fn cached_classes(&self) -> usize {
        self.cached_classes
    }

    /// Classes loaded so far (approximated by load progress).
    #[must_use]
    pub fn loaded(&self) -> usize {
        let total = self.private_fill.total();
        if total == 0 {
            return self.class_count;
        }
        let frac = self.private_fill.written() as f64 / total as f64;
        (self.class_count as f64 * frac).round() as usize
    }

    /// `true` once everything is loaded.
    #[must_use]
    pub fn done(&self) -> bool {
        self.private_fill.done() && self.cache.as_ref().is_none_or(|c| c.fill.done())
    }

    /// Unloads a fraction of the loaded classes (§IV.B). The private
    /// halves (writable structures and privately loaded read-only data)
    /// are freed back to the guest; the read-only halves in the shared
    /// class cache *stay mapped* — "the preloaded read-only part of an
    /// unloaded class will stay in memory as a part of the shared class
    /// cache even after it is unloaded, and so the pages will remain
    /// shared". Returns the number of private pages released.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn unload(
        &mut self,
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        fraction: f64,
    ) -> usize {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        let total = self.private_image.len_pages();
        let target = ((total as f64) * fraction) as usize;
        let mut released = 0;
        // Unload from the top of the segments (most recently loaded
        // classes go first, as with redeployed applications).
        for i in (total.saturating_sub(target)..total).rev() {
            if guest.release_page(mm, pid, self.private_base.offset(i as u64)) {
                released += 1;
            }
        }
        self.unloaded_pages += released;
        released
    }

    /// Private class pages released by unloading so far.
    #[must_use]
    pub fn unloaded_pages(&self) -> usize {
        self.unloaded_pages
    }

    /// Base and page count of the private class segments (for tests).
    #[must_use]
    pub fn private_extent(&self) -> (Vpn, usize) {
        (self.private_base, self.private_image.len_pages())
    }

    /// Base and page count of the shared-cache mapping, if enabled.
    #[must_use]
    pub fn cache_extent(&self) -> Option<(Vpn, usize)> {
        self.cache.as_ref().map(|c| (c.base, c.pages.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds::CacheBuilder;
    use oskernel::OsImage;
    use paging::HostMm;

    fn setup() -> (HostMm, GuestOs) {
        let mut mm = HostMm::new();
        let space = mm.create_space("vm");
        let guest = GuestOs::boot(
            &mut mm,
            space,
            mem::mib_to_pages(128.0),
            &OsImage::tiny_test(),
            1,
            Tick(0),
        );
        (mm, guest)
    }

    fn classes() -> ClassSet {
        ClassSet::generate(99, 31, 120, 6000, 700, 0.8)
    }

    fn build_cache(set: &ClassSet) -> SharedClassCache {
        let mut b = CacheBuilder::new("test", 16.0);
        for c in set.cacheable() {
            b.add(c.token, c.ro_bytes);
        }
        b.finish()
    }

    fn collect_fps(
        mm: &HostMm,
        guest: &GuestOs,
        pid: Pid,
        base: Vpn,
        pages: usize,
    ) -> Vec<Option<Fingerprint>> {
        (0..pages as u64)
            .map(|i| guest.fingerprint_at(mm, pid, base.offset(i)))
            .collect()
    }

    #[test]
    fn baseline_layouts_differ_across_processes() {
        let (mut mm, mut guest) = setup();
        let set = classes();
        let p1 = guest.spawn("java1");
        let p2 = guest.spawn("java2");
        let mut l1 = ClassLoader::launch(&mut guest, p1, &set, None, 111);
        let mut l2 = ClassLoader::launch(&mut guest, p2, &set, None, 222);
        l1.tick(&mut mm, &mut guest, p1, 1.0, Tick(1));
        l2.tick(&mut mm, &mut guest, p2, 1.0, Tick(1));
        let (b1, n1) = l1.private_extent();
        let (b2, n2) = l2.private_extent();
        let f1 = collect_fps(&mm, &guest, p1, b1, n1);
        let f2 = collect_fps(&mm, &guest, p2, b2, n2.min(n1));
        let matches = f1
            .iter()
            .zip(&f2)
            .filter(|(a, b)| a.is_some() && a == b)
            .count();
        // Execution-order layout: essentially nothing coincides.
        assert!(
            (matches as f64) < 0.02 * n1 as f64,
            "{matches} of {n1} pages coincide"
        );
    }

    #[test]
    fn shared_cache_pages_identical_across_processes() {
        let (mut mm, mut guest) = setup();
        let set = classes();
        let cache = build_cache(&set);
        let p1 = guest.spawn("java1");
        let p2 = guest.spawn("java2");
        let mut l1 = ClassLoader::launch(&mut guest, p1, &set, Some(&cache), 111);
        let mut l2 = ClassLoader::launch(&mut guest, p2, &set, Some(&cache), 222);
        l1.tick(&mut mm, &mut guest, p1, 1.0, Tick(1));
        l2.tick(&mut mm, &mut guest, p2, 1.0, Tick(1));
        let (cb1, cn1) = l1.cache_extent().unwrap();
        let (cb2, _) = l2.cache_extent().unwrap();
        let f1 = collect_fps(&mm, &guest, p1, cb1, cn1);
        let f2 = collect_fps(&mm, &guest, p2, cb2, cn1);
        let mapped: usize = f1.iter().filter(|f| f.is_some()).count();
        assert!(mapped > 0);
        let matches = f1
            .iter()
            .zip(&f2)
            .filter(|(a, b)| a.is_some() && a == b)
            .count();
        // Every faulted cache page is byte-identical in both processes.
        assert_eq!(matches, mapped);
        assert_eq!(l1.cached_classes(), l2.cached_classes());
        assert!(l1.cached_classes() > 0);
    }

    #[test]
    fn cache_shrinks_private_segments() {
        let (_, mut guest) = setup();
        let set = classes();
        let cache = build_cache(&set);
        let p1 = guest.spawn("java1");
        let p2 = guest.spawn("java2");
        let baseline = ClassLoader::launch(&mut guest, p1, &set, None, 111);
        let with_cache = ClassLoader::launch(&mut guest, p2, &set, Some(&cache), 111);
        assert!(
            with_cache.private_extent().1 < baseline.private_extent().1 / 2,
            "cache should absorb most read-only bytes"
        );
    }

    #[test]
    fn gradual_loading_is_monotone_and_completes() {
        let (mut mm, mut guest) = setup();
        let set = classes();
        let p1 = guest.spawn("java1");
        let mut loader = ClassLoader::launch(&mut guest, p1, &set, None, 111);
        assert!(!loader.done());
        loader.tick(&mut mm, &mut guest, p1, 0.5, Tick(1));
        assert!(!loader.done());
        let frames_half = mm.phys().allocated_frames();
        loader.tick(&mut mm, &mut guest, p1, 1.0, Tick(2));
        assert!(loader.done());
        assert!(mm.phys().allocated_frames() > frames_half);
        assert_eq!(loader.loaded(), loader.class_count());
    }

    #[test]
    fn unloading_frees_private_pages_but_keeps_cache_mapped() {
        let (mut mm, mut guest) = setup();
        let set = classes();
        let cache = build_cache(&set);
        let pid = guest.spawn("java");
        let mut loader = ClassLoader::launch(&mut guest, pid, &set, Some(&cache), 111);
        loader.tick(&mut mm, &mut guest, pid, 1.0, Tick(1));
        let (cb, cn) = loader.cache_extent().unwrap();
        let cache_mapped_before: usize = (0..cn as u64)
            .filter(|&i| guest.translate(pid, cb.offset(i)).is_some())
            .count();
        let frames_before = mm.phys().allocated_frames();

        let released = loader.unload(&mut mm, &mut guest, pid, 0.5);
        assert!(released > 0);
        assert_eq!(loader.unloaded_pages(), released);
        assert_eq!(mm.phys().allocated_frames(), frames_before - released);
        // The shared-cache mapping is untouched.
        let cache_mapped_after: usize = (0..cn as u64)
            .filter(|&i| guest.translate(pid, cb.offset(i)).is_some())
            .count();
        assert_eq!(cache_mapped_before, cache_mapped_after);
        mm.assert_consistent();

        // Unloading everything releases the rest; repeating is a no-op.
        loader.unload(&mut mm, &mut guest, pid, 1.0);
        assert_eq!(loader.unload(&mut mm, &mut guest, pid, 1.0), 0);
    }

    #[test]
    fn overflowing_cache_classes_fall_back_to_private() {
        let (_, mut guest) = setup();
        let set = classes();
        // A cache big enough for only a few classes.
        let mut b = CacheBuilder::new("small", 0.05);
        for c in set.cacheable() {
            b.add(c.token, c.ro_bytes);
        }
        let cache = b.finish();
        assert!(cache.class_count() < set.cacheable().count());
        let p1 = guest.spawn("java1");
        let loader = ClassLoader::launch(&mut guest, p1, &set, Some(&cache), 111);
        assert_eq!(loader.cached_classes(), cache.class_count());
    }
}
