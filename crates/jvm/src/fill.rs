//! Paced one-time page fills (startup phases write their areas gradually).

/// Tracks gradual population of a fixed page range: given a progress
/// fraction, yields the next page indices to write, each exactly once.
#[derive(Debug, Clone)]
pub(crate) struct ProgressFill {
    total: usize,
    written: usize,
}

impl ProgressFill {
    pub(crate) fn new(total: usize) -> ProgressFill {
        ProgressFill { total, written: 0 }
    }

    /// Pages to write so that `fraction` of the range is populated.
    /// Returns the half-open index range `[start, end)`.
    pub(crate) fn advance(&mut self, fraction: f64) -> std::ops::Range<usize> {
        let target = ((self.total as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        let target = target.min(self.total);
        let start = self.written;
        self.written = self.written.max(target);
        start..self.written
    }

    pub(crate) fn done(&self) -> bool {
        self.written >= self.total
    }

    pub(crate) fn written(&self) -> usize {
        self.written
    }

    pub(crate) fn total(&self) -> usize {
        self.total
    }
}

/// Converts an elapsed/duration pair into a progress fraction, treating a
/// non-positive duration as instantly complete.
pub(crate) fn phase_fraction(elapsed_s: f64, duration_s: f64) -> f64 {
    if duration_s <= 0.0 {
        1.0
    } else {
        (elapsed_s / duration_s).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_is_monotone_and_exact() {
        let mut fill = ProgressFill::new(100);
        assert_eq!(fill.advance(0.25), 0..25);
        assert_eq!(fill.advance(0.25), 25..25); // no double writes
        assert_eq!(fill.advance(0.5), 25..50);
        assert_eq!(fill.advance(2.0), 50..100); // clamped
        assert!(fill.done());
        assert_eq!(fill.total(), 100);
    }

    #[test]
    fn regressions_do_not_unwrite() {
        let mut fill = ProgressFill::new(10);
        let _ = fill.advance(0.8);
        assert_eq!(fill.advance(0.2), 8..8);
    }

    #[test]
    fn zero_total_is_immediately_done() {
        let mut fill = ProgressFill::new(0);
        assert_eq!(fill.advance(1.0), 0..0);
        assert!(fill.done());
    }

    #[test]
    fn phase_fraction_clamps() {
        assert_eq!(phase_fraction(5.0, 10.0), 0.5);
        assert_eq!(phase_fraction(20.0, 10.0), 1.0);
        assert_eq!(phase_fraction(-1.0, 10.0), 0.0);
        assert_eq!(phase_fraction(0.0, 0.0), 1.0);
    }
}
