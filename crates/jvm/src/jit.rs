//! The JIT compiler: profile-salted code cache and volatile scratch.

use crate::fill::ProgressFill;
use crate::profile::AppProfile;
use mem::{Fingerprint, Tick};
use obs::EventKind;
use oskernel::{GuestOs, Pid};
use paging::{MemSink, MemTag, Vpn};

const JIT_CODE_TOKEN: u64 = 0x717c;
const JIT_WORK_TOKEN: u64 = 0x717e;

/// JIT activity: code-cache growth during warm-up plus scratch churn.
///
/// Generated code "can differ from one Java process to another [because]
/// the JIT compiler uses runtime information for the optimizations"
/// (§IV.A) — so every code page is salted with the process identity and
/// is unshareable by construction. The work area is mostly read-write
/// scratch, discarded per compilation, plus a bulk-reserved zero tail.
#[derive(Debug)]
pub(crate) struct JitSim {
    code_base: Vpn,
    code_fill: ProgressFill,
    work_base: Vpn,
    scratch_pages: usize,
    #[cfg_attr(not(test), allow(dead_code))]
    zero_pages: usize,
    churn_cursor: u64,
    churn_carry: f64,
}

impl JitSim {
    pub(crate) fn launch(
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        profile: &AppProfile,
        now: Tick,
    ) -> JitSim {
        let code_pages = mem::mib_to_pages(profile.jit_code_mib).max(1);
        let scratch_pages = mem::mib_to_pages(profile.jit_work_mib).max(1);
        let zero_pages = mem::mib_to_pages(profile.jit_work_zero_mib);
        let code_base = guest.map_region(mm, pid, code_pages, MemTag::JavaJitCode);
        let work_base = guest.map_region(
            mm,
            pid,
            scratch_pages + zero_pages.max(1),
            MemTag::JavaJitWork,
        );
        let mut jit = JitSim {
            code_base,
            code_fill: ProgressFill::new(code_pages),
            work_base,
            scratch_pages,
            zero_pages,
            churn_cursor: 0,
            churn_carry: 0.0,
        };
        // The compiler's allocator grabs its arenas up front and zeroes
        // them; the tail beyond current use stays all-zero (one of the
        // three §III.A sources of residual sharing).
        for i in 0..zero_pages {
            guest.write_page(
                mm,
                pid,
                work_base.offset((scratch_pages + i) as u64),
                Fingerprint::ZERO,
                now,
            );
        }
        jit.churn_carry = 0.0;
        jit
    }

    #[allow(clippy::too_many_arguments)] // simulation context threading
    pub(crate) fn tick(
        &mut self,
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        profile: &AppProfile,
        salt: u64,
        warmup_fraction: f64,
        now: Tick,
    ) {
        self.emit_code(mm, guest, pid, salt, warmup_fraction, now);
        // Scratch churn: heavy while compiling, a trickle afterwards.
        let rate = if warmup_fraction < 1.0 {
            profile.jit_churn_mib_per_sec
        } else {
            profile.jit_churn_mib_per_sec * 0.05
        };
        self.scratch(
            mm,
            guest,
            pid,
            salt,
            mem::mib_to_pages(rate) as f64 / mem::TICKS_PER_SECOND as f64,
            now,
        );
    }

    /// Grows the code cache up to `warm_fraction` — methods get hot by
    /// being called, so under the traffic engine this fraction tracks
    /// requests served rather than elapsed time.
    pub(crate) fn emit_code(
        &mut self,
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        salt: u64,
        warm_fraction: f64,
        now: Tick,
    ) {
        let mut emitted = 0u64;
        for i in self.code_fill.advance(warm_fraction) {
            let fp = Fingerprint::of(&[JIT_CODE_TOKEN, salt, i as u64]);
            guest.write_page(mm, pid, self.code_base.offset(i as u64), fp, now);
            emitted += 1;
        }
        if emitted > 0 {
            mm.trace(|| EventKind::JitEmit {
                pid: pid.0,
                pages: emitted,
            });
        }
    }

    /// Rewrites `pages` of compilation scratch (fractions carry over).
    pub(crate) fn scratch(
        &mut self,
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        salt: u64,
        pages: f64,
        now: Tick,
    ) {
        self.churn_carry += pages;
        let mut writes = self.churn_carry as usize;
        self.churn_carry -= writes as f64;
        while writes > 0 && self.scratch_pages > 0 {
            let i = self.churn_cursor % self.scratch_pages as u64;
            self.churn_cursor += 1;
            let fp = Fingerprint::of(&[JIT_WORK_TOKEN, salt, i, now.0]);
            guest.write_page(mm, pid, self.work_base.offset(i), fp, now);
            writes -= 1;
        }
    }

    /// Pages of the work area that are bulk-reserved zeros.
    #[cfg(test)]
    pub(crate) fn zero_pages(&self) -> usize {
        self.zero_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::AppProfile;
    use oskernel::OsImage;
    use paging::HostMm;

    fn setup() -> (HostMm, GuestOs, Pid) {
        let mut mm = HostMm::new();
        let space = mm.create_space("vm");
        let mut guest = GuestOs::boot(
            &mut mm,
            space,
            mem::mib_to_pages(64.0),
            &OsImage::tiny_test(),
            1,
            Tick(0),
        );
        let pid = guest.spawn("java");
        (mm, guest, pid)
    }

    #[test]
    fn zero_tail_written_at_launch() {
        let (mut mm, mut guest, pid) = setup();
        let profile = AppProfile::tiny_test();
        let jit = JitSim::launch(&mut mm, &mut guest, pid, &profile, Tick(0));
        assert!(jit.zero_pages() > 0);
        for i in 0..jit.zero_pages() {
            let vpn = jit.work_base.offset((jit.scratch_pages + i) as u64);
            assert_eq!(guest.fingerprint_at(&mm, pid, vpn), Some(Fingerprint::ZERO));
        }
    }

    #[test]
    fn code_cache_fills_during_warmup_then_stays() {
        let (mut mm, mut guest, pid) = setup();
        let profile = AppProfile::tiny_test();
        let mut jit = JitSim::launch(&mut mm, &mut guest, pid, &profile, Tick(0));
        jit.tick(&mut mm, &mut guest, pid, &profile, 7, 0.5, Tick(1));
        assert!(!jit.code_fill.done());
        jit.tick(&mut mm, &mut guest, pid, &profile, 7, 1.0, Tick(2));
        assert!(jit.code_fill.done());
        // Code pages are salted: two processes' code differs.
        let fp_a = guest.fingerprint_at(&mm, pid, jit.code_base).unwrap();
        assert_ne!(fp_a, Fingerprint::of(&[JIT_CODE_TOKEN, 8, 0]));
        assert_eq!(fp_a, Fingerprint::of(&[JIT_CODE_TOKEN, 7, 0]));
    }

    #[test]
    fn scratch_churns_and_stays_volatile() {
        let (mut mm, mut guest, pid) = setup();
        let mut profile = AppProfile::tiny_test();
        profile.jit_churn_mib_per_sec = 2.0;
        let mut jit = JitSim::launch(&mut mm, &mut guest, pid, &profile, Tick(0));
        let writes_before = mm.phys().total_writes();
        for t in 1..=20u64 {
            jit.tick(&mut mm, &mut guest, pid, &profile, 7, 0.0, Tick(t));
        }
        assert!(mm.phys().total_writes() > writes_before + 10);
        // The same scratch page has been rewritten with different content.
        let fp1 = guest.fingerprint_at(&mm, pid, jit.work_base).unwrap();
        for t in 21..=40u64 {
            jit.tick(&mut mm, &mut guest, pid, &profile, 7, 0.0, Tick(t));
        }
        let fp2 = guest.fingerprint_at(&mm, pid, jit.work_base).unwrap();
        assert_ne!(fp1, fp2);
    }

    #[test]
    fn churn_slows_after_warmup() {
        let (mut mm, mut guest, pid) = setup();
        let mut profile = AppProfile::tiny_test();
        profile.jit_churn_mib_per_sec = 1.0;
        let mut jit = JitSim::launch(&mut mm, &mut guest, pid, &profile, Tick(0));
        let w0 = mm.phys().total_writes();
        for t in 1..=50u64 {
            jit.tick(&mut mm, &mut guest, pid, &profile, 7, 0.5, Tick(t));
        }
        let warm = mm.phys().total_writes() - w0;
        let w1 = mm.phys().total_writes();
        for t in 51..=100u64 {
            jit.tick(&mut mm, &mut guest, pid, &profile, 7, 1.0, Tick(t));
        }
        let steady = mm.phys().total_writes() - w1;
        assert!(steady < warm / 2, "steady {steady} vs warm {warm}");
    }
}
