//! Thread stacks: pointer-laden, per-process, continuously rewritten.

use crate::fill::ProgressFill;
use crate::profile::AppProfile;
use mem::{Fingerprint, Tick};
use oskernel::{GuestOs, Pid};
use paging::{MemSink, MemTag, Vpn};

const STACK_TOKEN: u64 = 0x57ac;

/// Stack simulator: the area is written with process-salted content at
/// start-up and the active top frames keep being rewritten — "not
/// shareable because most of this area is accessed in read-write mode and
/// there are many pointers to internal data structures" (§IV.A).
#[derive(Debug)]
pub(crate) struct StackSim {
    base: Vpn,
    pages: usize,
    fill: ProgressFill,
    churn_cursor: u64,
    churn_carry: f64,
}

impl StackSim {
    pub(crate) fn launch(guest: &mut GuestOs, pid: Pid, profile: &AppProfile) -> StackSim {
        let pages = mem::mib_to_pages(profile.stack_mib).max(1);
        let base = guest.add_region(pid, pages, MemTag::JavaStack);
        StackSim {
            base,
            pages,
            fill: ProgressFill::new(pages),
            churn_cursor: 0,
            churn_carry: 0.0,
        }
    }

    #[allow(clippy::too_many_arguments)] // simulation context threading
    pub(crate) fn tick(
        &mut self,
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        profile: &AppProfile,
        salt: u64,
        startup_fraction: f64,
        now: Tick,
    ) {
        self.fill(mm, guest, pid, salt, startup_fraction, now);
        self.churn(
            mm,
            guest,
            pid,
            salt,
            profile.stack_churn_per_sec * self.pages as f64 / mem::TICKS_PER_SECOND as f64,
            now,
        );
    }

    /// Writes the stack area with process-salted content up to
    /// `startup_fraction` of the thread population.
    pub(crate) fn fill(
        &mut self,
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        salt: u64,
        startup_fraction: f64,
        now: Tick,
    ) {
        for i in self.fill.advance(startup_fraction) {
            let fp = Fingerprint::of(&[STACK_TOKEN, salt, i as u64]);
            guest.write_page(mm, pid, self.base.offset(i as u64), fp, now);
        }
    }

    /// Rewrites `pages` of active top frames (fractions carry over).
    pub(crate) fn churn(
        &mut self,
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        pid: Pid,
        salt: u64,
        pages: f64,
        now: Tick,
    ) {
        self.churn_carry += pages;
        let mut writes = self.churn_carry as usize;
        self.churn_carry -= writes as f64;
        while writes > 0 {
            let i = self.churn_cursor % self.pages as u64;
            self.churn_cursor += 1;
            let fp = Fingerprint::of(&[STACK_TOKEN, salt, i, now.0]);
            guest.write_page(mm, pid, self.base.offset(i), fp, now);
            writes -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oskernel::OsImage;
    use paging::HostMm;

    #[test]
    fn stacks_fill_then_churn() {
        let mut mm = HostMm::new();
        let space = mm.create_space("vm");
        let mut guest = GuestOs::boot(
            &mut mm,
            space,
            mem::mib_to_pages(64.0),
            &OsImage::tiny_test(),
            1,
            Tick(0),
        );
        let pid = guest.spawn("java");
        let mut profile = AppProfile::tiny_test();
        profile.stack_churn_per_sec = 2.0;
        let mut stack = StackSim::launch(&mut guest, pid, &profile);
        stack.tick(&mut mm, &mut guest, pid, &profile, 1, 1.0, Tick(1));
        assert!(stack.fill.done());
        let fp0 = guest.fingerprint_at(&mm, pid, stack.base).unwrap();
        for t in 2..30u64 {
            stack.tick(&mut mm, &mut guest, pid, &profile, 1, 1.0, Tick(t));
        }
        assert_ne!(guest.fingerprint_at(&mm, pid, stack.base).unwrap(), fp0);
    }
}
