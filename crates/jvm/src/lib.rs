//! A component-level model of a Java virtual machine process.
//!
//! The paper's analysis (§III) divides a Java process's memory into the
//! seven categories of Table IV and explains, per category, why its page
//! contents do or do not repeat across JVM processes. This crate
//! implements a [`JavaVm`] that reproduces exactly those (non-)repetition
//! mechanisms, page by page, inside a guest OS:
//!
//! | Category ([`MemoryCategory`]) | Layout behaviour modelled |
//! |---|---|
//! | Code area | the mapped JVM binary: byte-identical across processes running the same JVM version; library data areas are process-private |
//! | Class metadata | created in class-*load order* with per-process interleaving jitter (baseline), or mapped byte-identical from the shared class cache (`-Xshareclasses`, the paper's technique) |
//! | JIT-compiled code | embeds runtime profile values — salted per process, never repeats |
//! | JIT work area | short-lived scratch, constantly rewritten (volatile) plus a bulk-reserved zero tail |
//! | Java heap | moving GC: allocation writes fresh content, collections zero-fill freed space; only the quiet zero pages are ever mergeable |
//! | JVM work area | malloc'd structures (private), NIO buffers (same benchmark data in every VM ⇒ identical), bulk-zeroed arena tails |
//! | Stack | pointer-laden, per-process, rewritten continuously |
//!
//! Workload parameters arrive through an [`AppProfile`]; presets matching
//! the paper's Table III live in the `workloads` crate.
//!
//! # Example
//!
//! ```
//! use jvm::{AppProfile, JavaVm, JvmConfig};
//! use mem::Tick;
//! use oskernel::{GuestOs, OsImage};
//! use paging::HostMm;
//!
//! let mut mm = HostMm::new();
//! let vm_space = mm.create_space("qemu");
//! let mut guest = GuestOs::boot(
//!     &mut mm, vm_space, mem::mib_to_pages(96.0), &OsImage::tiny_test(), 1, Tick(0),
//! );
//! let profile = AppProfile::tiny_test();
//! let mut java = JavaVm::launch(
//!     &mut mm, &mut guest, JvmConfig::new(42, 7), profile, Tick(0),
//! );
//! for t in 1..200 {
//!     java.tick(&mut mm, &mut guest, Tick(t));
//! }
//! assert!(java.classes_loaded() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod category;
mod classes;
mod classloader;
mod codearea;
mod fill;
mod heap;
mod jit;
mod profile;
mod request;
mod stack;
mod vm;
mod workarea;

pub use category::MemoryCategory;
pub use classes::{ClassSet, ClassSpec};
pub use classloader::ClassLoader;
pub use profile::{AppProfile, GcPolicy, HeapProfile};
pub use request::RequestCost;
pub use vm::{JavaVm, JvmConfig};
