//! The assembled Java VM process.

use crate::classes::ClassSet;
use crate::classloader::ClassLoader;
use crate::codearea::CodeArea;
use crate::fill::phase_fraction;
use crate::heap::HeapSim;
use crate::jit::JitSim;
use crate::profile::AppProfile;
use crate::request::RequestCost;
use crate::stack::StackSim;
use crate::workarea::WorkArea;
use cds::SharedClassCache;
use mem::Tick;
use oskernel::{GuestOs, Pid};
use paging::MemSink;

/// Seconds after class loading during which the NIO buffers fill with the
/// first request/response traffic.
const NIO_FILL_SECONDS: f64 = 30.0;

/// Per-process JVM configuration.
///
/// # Example
///
/// ```
/// use jvm::JvmConfig;
///
/// let cfg = JvmConfig::new(6, 42); // "Java 6 SR9", process salt 42
/// assert!(cfg.shared_cache.is_none());
/// ```
#[derive(Debug, Clone)]
pub struct JvmConfig {
    /// Identity of the JVM build. Processes with equal versions map
    /// byte-identical executable text.
    pub jvm_version: u64,
    /// Per-process salt: seeds load-order jitter and all process-private
    /// page contents (pointers, profile data).
    pub process_salt: u64,
    /// This guest's copy of the shared class cache file, if
    /// `-Xshareclasses` is on (the paper's technique).
    pub shared_cache: Option<SharedClassCache>,
}

impl JvmConfig {
    /// Baseline configuration: no class sharing.
    #[must_use]
    pub fn new(jvm_version: u64, process_salt: u64) -> JvmConfig {
        JvmConfig {
            jvm_version,
            process_salt,
            shared_cache: None,
        }
    }

    /// Enables class sharing with (a copy of) `cache`.
    #[must_use]
    pub fn with_shared_cache(mut self, cache: SharedClassCache) -> JvmConfig {
        self.shared_cache = Some(cache);
        self
    }
}

/// A running Java VM process inside a guest OS.
///
/// Drive it with [`tick`](Self::tick) once per simulation tick; the model
/// sequences its own start-up phases (code mapping at launch, class
/// loading and heap warm-up over `class_load_seconds`, JIT warm-up over
/// `jit_warmup_seconds`, NIO buffer fill with the first requests) and then
/// settles into steady-state allocation, collection and churn.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct JavaVm {
    pid: Pid,
    profile: AppProfile,
    salt: u64,
    start: Tick,
    code: CodeArea,
    loader: ClassLoader,
    heap: HeapSim,
    jit: JitSim,
    work: WorkArea,
    stack: StackSim,
    /// Request-driven JIT warm-up progress (0..=1); only the traffic
    /// engine advances this — the tick path uses wall-clock fractions.
    traffic_jit: f64,
    /// Request-driven NIO buffer-fill progress (0..=1).
    traffic_nio: f64,
    requests_served: u64,
}

impl JavaVm {
    /// Spawns the process in `guest` and lays the groundwork: code text is
    /// mapped, regions reserved, the class-load plan fixed.
    pub fn launch(
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        cfg: JvmConfig,
        profile: AppProfile,
        now: Tick,
    ) -> JavaVm {
        let pid = guest.spawn(profile.name.clone());
        let classes = ClassSet::for_profile(&profile);
        let code = CodeArea::launch(mm, guest, pid, &profile, cfg.jvm_version, now);
        let loader = ClassLoader::launch(
            guest,
            pid,
            &classes,
            cfg.shared_cache.as_ref(),
            cfg.process_salt,
        );
        let heap = HeapSim::launch(mm, guest, pid, &profile.heap, cfg.process_salt);
        let jit = JitSim::launch(mm, guest, pid, &profile, now);
        let work = WorkArea::launch(mm, guest, pid, &profile, now);
        let stack = StackSim::launch(guest, pid, &profile);
        JavaVm {
            pid,
            profile,
            salt: cfg.process_salt,
            start: now,
            code,
            loader,
            heap,
            jit,
            work,
            stack,
            traffic_jit: 0.0,
            traffic_nio: 0.0,
            requests_served: 0,
        }
    }

    /// The guest pid of this JVM process.
    #[must_use]
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The workload profile this JVM runs.
    #[must_use]
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// Advances the JVM by one simulation tick.
    pub fn tick(&mut self, mm: &mut impl MemSink, guest: &mut GuestOs, now: Tick) {
        let elapsed_s = (now - self.start) as f64 / mem::TICKS_PER_SECOND as f64;
        let load_f = phase_fraction(elapsed_s, self.profile.class_load_seconds);
        let jit_f = phase_fraction(elapsed_s, self.profile.jit_warmup_seconds);
        let nio_f = phase_fraction(
            elapsed_s - self.profile.class_load_seconds,
            NIO_FILL_SECONDS,
        );
        self.code.tick(mm, guest, self.pid, self.salt, load_f, now);
        self.loader.tick(mm, guest, self.pid, load_f, now);
        self.heap.tick(mm, guest, self.pid, self.salt, load_f, now);
        self.jit
            .tick(mm, guest, self.pid, &self.profile, self.salt, jit_f, now);
        self.work.tick(
            mm,
            guest,
            self.pid,
            &self.profile,
            self.salt,
            load_f,
            nio_f,
            now,
        );
        self.stack
            .tick(mm, guest, self.pid, &self.profile, self.salt, load_f, now);
    }

    /// Advances only the *wall-clock* start-up phases: code mapping,
    /// class loading, heap warm-up, work-area materialisation, stack
    /// fill. JIT warm-up and NIO fill are *not* advanced — under the
    /// traffic engine those track requests served (via
    /// [`serve_requests`](Self::serve_requests)), not elapsed time.
    ///
    /// The traffic engine calls this on a sparse schedule (once per
    /// simulated second until [`startup_done`](Self::startup_done)), so
    /// an idle-but-booted JVM costs nothing per tick.
    pub fn advance_startup(&mut self, mm: &mut impl MemSink, guest: &mut GuestOs, now: Tick) {
        let elapsed_s = (now - self.start) as f64 / mem::TICKS_PER_SECOND as f64;
        let load_f = phase_fraction(elapsed_s, self.profile.class_load_seconds);
        self.code.tick(mm, guest, self.pid, self.salt, load_f, now);
        self.loader.tick(mm, guest, self.pid, load_f, now);
        self.heap.warm(mm, guest, self.pid, self.salt, load_f, now);
        self.work
            .startup(mm, guest, self.pid, self.salt, load_f, now);
        self.stack.fill(mm, guest, self.pid, self.salt, load_f, now);
    }

    /// `true` once the wall-clock start-up phases have nothing left to
    /// write (class loading finished).
    #[must_use]
    pub fn startup_done(&self, now: Tick) -> bool {
        let elapsed_s = (now - self.start) as f64 / mem::TICKS_PER_SECOND as f64;
        elapsed_s >= self.profile.class_load_seconds
    }

    /// Serves `count` requests at `cost` each: heap allocation (young-gen
    /// pressure and collections), JIT warm-up progress and scratch churn,
    /// work-area and stack dirtying, NIO fill — all batched so a burst of
    /// requests costs one pass per subsystem, not one per request.
    pub fn serve_requests(
        &mut self,
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        cost: &RequestCost,
        count: u64,
        now: Tick,
    ) {
        if count == 0 {
            return;
        }
        let n = count as f64;
        self.traffic_jit = (self.traffic_jit + cost.jit_warm_delta * n).min(1.0);
        self.traffic_nio = (self.traffic_nio + cost.nio_delta * n).min(1.0);
        self.heap.serve(
            mm,
            guest,
            self.pid,
            self.salt,
            cost.heap_alloc_pages * n,
            now,
        );
        self.jit
            .emit_code(mm, guest, self.pid, self.salt, self.traffic_jit, now);
        self.jit.scratch(
            mm,
            guest,
            self.pid,
            self.salt,
            cost.jit_scratch_pages * n,
            now,
        );
        self.work
            .fill_nio(mm, guest, self.pid, &self.profile, self.traffic_nio, now);
        self.work.churn(
            mm,
            guest,
            self.pid,
            self.salt,
            cost.work_dirty_pages * n,
            now,
        );
        self.stack.churn(
            mm,
            guest,
            self.pid,
            self.salt,
            cost.stack_dirty_pages * n,
            now,
        );
        self.requests_served += count;
    }

    /// Requests served via [`serve_requests`](Self::serve_requests).
    #[must_use]
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Request-driven JIT warm-up progress in `0..=1` (1.0 = code cache
    /// fully populated by traffic).
    #[must_use]
    pub fn traffic_warmth(&self) -> f64 {
        self.traffic_jit
    }

    /// `true` once all start-up phases are over.
    #[must_use]
    pub fn warmed_up(&self, now: Tick) -> bool {
        let elapsed_s = (now - self.start) as f64 / mem::TICKS_PER_SECOND as f64;
        elapsed_s
            >= self
                .profile
                .class_load_seconds
                .max(self.profile.jit_warmup_seconds)
                + NIO_FILL_SECONDS
    }

    /// Classes loaded so far.
    #[must_use]
    pub fn classes_loaded(&self) -> usize {
        self.loader.loaded()
    }

    /// Classes served from the shared class cache.
    #[must_use]
    pub fn classes_from_cache(&self) -> usize {
        self.loader.cached_classes()
    }

    /// Garbage collections so far.
    #[must_use]
    pub fn gc_count(&self) -> u64 {
        self.heap.gc_count()
    }

    /// The class loader (extents are useful for analysis and tests).
    #[must_use]
    pub fn loader(&self) -> &ClassLoader {
        &self.loader
    }

    /// Unloads a fraction of loaded classes (application redeploy):
    /// private class structures are freed, shared-cache pages stay
    /// mapped and shared (§IV.B). Returns private pages released.
    pub fn unload_classes(
        &mut self,
        mm: &mut impl MemSink,
        guest: &mut GuestOs,
        fraction: f64,
    ) -> usize {
        self.loader.unload(mm, guest, self.pid, fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds::CacheBuilder;
    use oskernel::OsImage;
    use paging::{HostMm, MemTag};

    fn boot(mm: &mut HostMm, name: &str, salt: u64) -> GuestOs {
        let space = mm.create_space(name);
        GuestOs::boot(
            mm,
            space,
            mem::mib_to_pages(96.0),
            &OsImage::tiny_test(),
            salt,
            Tick(0),
        )
    }

    fn run(java: &mut JavaVm, mm: &mut impl MemSink, guest: &mut GuestOs, from: u64, to: u64) {
        for t in from..to {
            java.tick(mm, guest, Tick(t));
        }
    }

    #[test]
    fn full_lifecycle_reaches_steady_state() {
        let mut mm = HostMm::new();
        let mut guest = boot(&mut mm, "vm1", 1);
        let profile = AppProfile::tiny_test();
        let mut java = JavaVm::launch(&mut mm, &mut guest, JvmConfig::new(6, 7), profile, Tick(0));
        run(&mut java, &mut mm, &mut guest, 1, 600);
        assert!(java.warmed_up(Tick(600)));
        assert_eq!(java.classes_loaded(), java.loader().class_count());
        assert!(java.gc_count() > 0, "heap should have collected");
        mm.assert_consistent();
    }

    #[test]
    fn memory_footprint_has_every_category() {
        let mut mm = HostMm::new();
        let mut guest = boot(&mut mm, "vm1", 1);
        let mut java = JavaVm::launch(
            &mut mm,
            &mut guest,
            JvmConfig::new(6, 7),
            AppProfile::tiny_test(),
            Tick(0),
        );
        run(&mut java, &mut mm, &mut guest, 1, 600);
        let gas = guest.context(java.pid()).unwrap();
        for tag in [
            MemTag::JavaCode,
            MemTag::JavaClassMetadata,
            MemTag::JavaJitCode,
            MemTag::JavaJitWork,
            MemTag::JavaHeap,
            MemTag::JavaJvmWork,
            MemTag::JavaStack,
        ] {
            let pages: usize = gas
                .regions()
                .filter(|r| r.tag() == tag)
                .map(|r| r.mapped_pages())
                .sum();
            assert!(pages > 0, "no mapped pages for {tag:?}");
        }
    }

    #[test]
    fn cached_jvm_uses_cache_region() {
        let mut mm = HostMm::new();
        let mut guest = boot(&mut mm, "vm1", 1);
        let profile = AppProfile::tiny_test();
        let classes = ClassSet::for_profile(&profile);
        let mut b = CacheBuilder::new("tiny", 8.0);
        for c in classes.cacheable() {
            b.add(c.token, c.ro_bytes);
        }
        let cache = b.finish();
        let cfg = JvmConfig::new(6, 7).with_shared_cache(cache);
        let mut java = JavaVm::launch(&mut mm, &mut guest, cfg, profile, Tick(0));
        run(&mut java, &mut mm, &mut guest, 1, 600);
        assert!(java.classes_from_cache() > 0);
        let gas = guest.context(java.pid()).unwrap();
        let cache_pages: usize = gas
            .regions()
            .filter(|r| r.tag() == MemTag::JavaSharedClassCache)
            .map(|r| r.mapped_pages())
            .sum();
        assert!(cache_pages > 0);
    }

    #[test]
    fn two_vms_same_workload_share_only_the_invariant_areas() {
        // End-to-end sanity: count cross-VM page-content matches by tag.
        let mut mm = HostMm::new();
        let mut g1 = boot(&mut mm, "vm1", 1);
        let mut g2 = boot(&mut mm, "vm2", 2);
        let profile = AppProfile::tiny_test();
        let mut j1 = JavaVm::launch(
            &mut mm,
            &mut g1,
            JvmConfig::new(6, 11),
            profile.clone(),
            Tick(0),
        );
        let mut j2 = JavaVm::launch(&mut mm, &mut g2, JvmConfig::new(6, 22), profile, Tick(0));
        for t in 1..600u64 {
            j1.tick(&mut mm, &mut g1, Tick(t));
            j2.tick(&mut mm, &mut g2, Tick(t));
        }
        use std::collections::HashSet;
        let fps_by_tag = |guest: &GuestOs, java: &JavaVm, tag: MemTag| -> HashSet<u128> {
            guest
                .context(java.pid())
                .unwrap()
                .regions()
                .filter(|r| r.tag() == tag)
                .flat_map(|r| r.iter_mapped().collect::<Vec<_>>())
                .filter_map(|(_, gpfn)| {
                    mm.fingerprint_at(guest.vm_space(), guest.host_vpn(gpfn))
                        .map(|fp| fp.as_u128())
                })
                .collect()
        };
        // Code text overlaps heavily.
        let c1 = fps_by_tag(&g1, &j1, MemTag::JavaCode);
        let c2 = fps_by_tag(&g2, &j2, MemTag::JavaCode);
        let code_common = c1.intersection(&c2).count();
        assert!(code_common > 0, "code text should match across VMs");
        // Baseline class metadata: essentially no overlap.
        let m1 = fps_by_tag(&g1, &j1, MemTag::JavaClassMetadata);
        let m2 = fps_by_tag(&g2, &j2, MemTag::JavaClassMetadata);
        let class_common = m1.intersection(&m2).filter(|&&fp| fp != 0).count();
        assert!(
            class_common * 50 < m1.len().max(1),
            "baseline class pages should not match ({class_common}/{})",
            m1.len()
        );
        // JIT code: zero overlap (profile-salted).
        let x1 = fps_by_tag(&g1, &j1, MemTag::JavaJitCode);
        let x2 = fps_by_tag(&g2, &j2, MemTag::JavaJitCode);
        assert_eq!(x1.intersection(&x2).count(), 0);
    }
}

#[cfg(test)]
mod unload_tests {
    use super::*;
    use cds::CacheBuilder;
    use oskernel::OsImage;
    use paging::HostMm;

    #[test]
    fn unload_frees_private_but_not_cache_memory() {
        let mut mm = HostMm::new();
        let space = mm.create_space("vm");
        let mut guest = GuestOs::boot(
            &mut mm,
            space,
            mem::mib_to_pages(96.0),
            &OsImage::tiny_test(),
            1,
            Tick(0),
        );
        let profile = AppProfile::tiny_test();
        let classes = ClassSet::for_profile(&profile);
        let mut builder = CacheBuilder::new("t", 8.0);
        for c in classes.cacheable() {
            builder.add(c.token, c.ro_bytes);
        }
        let cfg = JvmConfig::new(6, 7).with_shared_cache(builder.finish());
        let mut java = JavaVm::launch(&mut mm, &mut guest, cfg, profile, Tick(0));
        for t in 1..200u64 {
            java.tick(&mut mm, &mut guest, Tick(t));
        }
        let frames_before = mm.phys().allocated_frames();
        let released = java.unload_classes(&mut mm, &mut guest, 1.0);
        assert!(released > 0);
        assert_eq!(mm.phys().allocated_frames(), frames_before - released);
        // Cache mapping survives the unload (§IV.B).
        let (cache_base, cache_pages) = java.loader().cache_extent().unwrap();
        let still_mapped = (0..cache_pages as u64)
            .filter(|&i| guest.translate(java.pid(), cache_base.offset(i)).is_some())
            .count();
        assert!(still_mapped > 0, "cache pages must stay resident");
        mm.assert_consistent();
    }

    #[test]
    fn warmed_up_timing_matches_profile() {
        let mut mm = HostMm::new();
        let space = mm.create_space("vm");
        let mut guest = GuestOs::boot(
            &mut mm,
            space,
            mem::mib_to_pages(96.0),
            &OsImage::tiny_test(),
            1,
            Tick(0),
        );
        let profile = AppProfile::tiny_test();
        let warm_after = profile.class_load_seconds.max(profile.jit_warmup_seconds) + 30.0;
        let java = JavaVm::launch(&mut mm, &mut guest, JvmConfig::new(6, 7), profile, Tick(0));
        assert!(!java.warmed_up(Tick::from_seconds(warm_after - 1.0)));
        assert!(java.warmed_up(Tick::from_seconds(warm_after)));
    }
}
