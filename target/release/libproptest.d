/root/repo/target/release/libproptest.rlib: /root/repo/vendor/proptest/src/lib.rs /root/repo/vendor/proptest/src/strategy.rs /root/repo/vendor/proptest/src/test_runner.rs
