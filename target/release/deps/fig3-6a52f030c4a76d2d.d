/root/repo/target/release/deps/fig3-6a52f030c4a76d2d.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-6a52f030c4a76d2d: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
