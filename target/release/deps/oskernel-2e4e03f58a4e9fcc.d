/root/repo/target/release/deps/oskernel-2e4e03f58a4e9fcc.d: crates/oskernel/src/lib.rs crates/oskernel/src/guestas.rs crates/oskernel/src/guestos.rs crates/oskernel/src/image.rs crates/oskernel/src/smaps.rs

/root/repo/target/release/deps/liboskernel-2e4e03f58a4e9fcc.rlib: crates/oskernel/src/lib.rs crates/oskernel/src/guestas.rs crates/oskernel/src/guestos.rs crates/oskernel/src/image.rs crates/oskernel/src/smaps.rs

/root/repo/target/release/deps/liboskernel-2e4e03f58a4e9fcc.rmeta: crates/oskernel/src/lib.rs crates/oskernel/src/guestas.rs crates/oskernel/src/guestos.rs crates/oskernel/src/image.rs crates/oskernel/src/smaps.rs

crates/oskernel/src/lib.rs:
crates/oskernel/src/guestas.rs:
crates/oskernel/src/guestos.rs:
crates/oskernel/src/image.rs:
crates/oskernel/src/smaps.rs:
