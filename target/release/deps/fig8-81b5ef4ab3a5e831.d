/root/repo/target/release/deps/fig8-81b5ef4ab3a5e831.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-81b5ef4ab3a5e831: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
