/root/repo/target/release/deps/tps_java_repro-ee51ec7d0fa86cff.d: src/main.rs

/root/repo/target/release/deps/tps_java_repro-ee51ec7d0fa86cff: src/main.rs

src/main.rs:
