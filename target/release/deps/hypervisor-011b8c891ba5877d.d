/root/repo/target/release/deps/hypervisor-011b8c891ba5877d.d: crates/hypervisor/src/lib.rs crates/hypervisor/src/balloon.rs crates/hypervisor/src/diffengine.rs crates/hypervisor/src/kvm.rs crates/hypervisor/src/pagingmodel.rs crates/hypervisor/src/placement.rs crates/hypervisor/src/powervm.rs crates/hypervisor/src/satori.rs

/root/repo/target/release/deps/libhypervisor-011b8c891ba5877d.rlib: crates/hypervisor/src/lib.rs crates/hypervisor/src/balloon.rs crates/hypervisor/src/diffengine.rs crates/hypervisor/src/kvm.rs crates/hypervisor/src/pagingmodel.rs crates/hypervisor/src/placement.rs crates/hypervisor/src/powervm.rs crates/hypervisor/src/satori.rs

/root/repo/target/release/deps/libhypervisor-011b8c891ba5877d.rmeta: crates/hypervisor/src/lib.rs crates/hypervisor/src/balloon.rs crates/hypervisor/src/diffengine.rs crates/hypervisor/src/kvm.rs crates/hypervisor/src/pagingmodel.rs crates/hypervisor/src/placement.rs crates/hypervisor/src/powervm.rs crates/hypervisor/src/satori.rs

crates/hypervisor/src/lib.rs:
crates/hypervisor/src/balloon.rs:
crates/hypervisor/src/diffengine.rs:
crates/hypervisor/src/kvm.rs:
crates/hypervisor/src/pagingmodel.rs:
crates/hypervisor/src/placement.rs:
crates/hypervisor/src/powervm.rs:
crates/hypervisor/src/satori.rs:
