/root/repo/target/release/deps/tables-9193a39c43e66b9c.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-9193a39c43e66b9c: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
