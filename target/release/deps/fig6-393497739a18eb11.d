/root/repo/target/release/deps/fig6-393497739a18eb11.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-393497739a18eb11: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
