/root/repo/target/release/deps/tpslab-bf09259a214219c2.d: crates/tpslab/src/lib.rs crates/tpslab/src/config.rs crates/tpslab/src/powervm.rs crates/tpslab/src/report.rs crates/tpslab/src/run.rs crates/tpslab/src/sweep.rs

/root/repo/target/release/deps/libtpslab-bf09259a214219c2.rlib: crates/tpslab/src/lib.rs crates/tpslab/src/config.rs crates/tpslab/src/powervm.rs crates/tpslab/src/report.rs crates/tpslab/src/run.rs crates/tpslab/src/sweep.rs

/root/repo/target/release/deps/libtpslab-bf09259a214219c2.rmeta: crates/tpslab/src/lib.rs crates/tpslab/src/config.rs crates/tpslab/src/powervm.rs crates/tpslab/src/report.rs crates/tpslab/src/run.rs crates/tpslab/src/sweep.rs

crates/tpslab/src/lib.rs:
crates/tpslab/src/config.rs:
crates/tpslab/src/powervm.rs:
crates/tpslab/src/report.rs:
crates/tpslab/src/run.rs:
crates/tpslab/src/sweep.rs:
