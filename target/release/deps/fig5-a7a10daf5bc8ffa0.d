/root/repo/target/release/deps/fig5-a7a10daf5bc8ffa0.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-a7a10daf5bc8ffa0: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
