/root/repo/target/release/deps/ablation_balloon-321ea5a8384802ff.d: crates/bench/src/bin/ablation_balloon.rs

/root/repo/target/release/deps/ablation_balloon-321ea5a8384802ff: crates/bench/src/bin/ablation_balloon.rs

crates/bench/src/bin/ablation_balloon.rs:
