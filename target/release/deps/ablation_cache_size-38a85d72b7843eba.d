/root/repo/target/release/deps/ablation_cache_size-38a85d72b7843eba.d: crates/bench/src/bin/ablation_cache_size.rs

/root/repo/target/release/deps/ablation_cache_size-38a85d72b7843eba: crates/bench/src/bin/ablation_cache_size.rs

crates/bench/src/bin/ablation_cache_size.rs:
