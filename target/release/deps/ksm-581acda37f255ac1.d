/root/repo/target/release/deps/ksm-581acda37f255ac1.d: crates/ksm/src/lib.rs crates/ksm/src/params.rs crates/ksm/src/powervm.rs crates/ksm/src/scanner.rs crates/ksm/src/stats.rs

/root/repo/target/release/deps/libksm-581acda37f255ac1.rlib: crates/ksm/src/lib.rs crates/ksm/src/params.rs crates/ksm/src/powervm.rs crates/ksm/src/scanner.rs crates/ksm/src/stats.rs

/root/repo/target/release/deps/libksm-581acda37f255ac1.rmeta: crates/ksm/src/lib.rs crates/ksm/src/params.rs crates/ksm/src/powervm.rs crates/ksm/src/scanner.rs crates/ksm/src/stats.rs

crates/ksm/src/lib.rs:
crates/ksm/src/params.rs:
crates/ksm/src/powervm.rs:
crates/ksm/src/scanner.rs:
crates/ksm/src/stats.rs:
