/root/repo/target/release/deps/fig2-c8e7670043f2d713.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-c8e7670043f2d713: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
