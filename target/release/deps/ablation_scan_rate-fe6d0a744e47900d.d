/root/repo/target/release/deps/ablation_scan_rate-fe6d0a744e47900d.d: crates/bench/src/bin/ablation_scan_rate.rs

/root/repo/target/release/deps/ablation_scan_rate-fe6d0a744e47900d: crates/bench/src/bin/ablation_scan_rate.rs

crates/bench/src/bin/ablation_scan_rate.rs:
