/root/repo/target/release/deps/paging-b6140a5bf698b7fe.d: crates/paging/src/lib.rs crates/paging/src/hostmm.rs crates/paging/src/malloc.rs crates/paging/src/rmap.rs crates/paging/src/space.rs crates/paging/src/tag.rs

/root/repo/target/release/deps/libpaging-b6140a5bf698b7fe.rlib: crates/paging/src/lib.rs crates/paging/src/hostmm.rs crates/paging/src/malloc.rs crates/paging/src/rmap.rs crates/paging/src/space.rs crates/paging/src/tag.rs

/root/repo/target/release/deps/libpaging-b6140a5bf698b7fe.rmeta: crates/paging/src/lib.rs crates/paging/src/hostmm.rs crates/paging/src/malloc.rs crates/paging/src/rmap.rs crates/paging/src/space.rs crates/paging/src/tag.rs

crates/paging/src/lib.rs:
crates/paging/src/hostmm.rs:
crates/paging/src/malloc.rs:
crates/paging/src/rmap.rs:
crates/paging/src/space.rs:
crates/paging/src/tag.rs:
