/root/repo/target/release/deps/analysis-10f8d08a68e04cb8.d: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/render.rs crates/analysis/src/snapshot.rs

/root/repo/target/release/deps/libanalysis-10f8d08a68e04cb8.rlib: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/render.rs crates/analysis/src/snapshot.rs

/root/repo/target/release/deps/libanalysis-10f8d08a68e04cb8.rmeta: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/render.rs crates/analysis/src/snapshot.rs

crates/analysis/src/lib.rs:
crates/analysis/src/breakdown.rs:
crates/analysis/src/render.rs:
crates/analysis/src/snapshot.rs:
