/root/repo/target/release/deps/tps_java_repro-a9f356b6760356de.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libtps_java_repro-a9f356b6760356de.rlib: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libtps_java_repro-a9f356b6760356de.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
