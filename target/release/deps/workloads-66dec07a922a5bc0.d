/root/repo/target/release/deps/workloads-66dec07a922a5bc0.d: crates/workloads/src/lib.rs crates/workloads/src/driver.rs crates/workloads/src/presets.rs

/root/repo/target/release/deps/libworkloads-66dec07a922a5bc0.rlib: crates/workloads/src/lib.rs crates/workloads/src/driver.rs crates/workloads/src/presets.rs

/root/repo/target/release/deps/libworkloads-66dec07a922a5bc0.rmeta: crates/workloads/src/lib.rs crates/workloads/src/driver.rs crates/workloads/src/presets.rs

crates/workloads/src/lib.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/presets.rs:
