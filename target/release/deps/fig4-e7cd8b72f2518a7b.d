/root/repo/target/release/deps/fig4-e7cd8b72f2518a7b.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-e7cd8b72f2518a7b: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
