/root/repo/target/release/deps/cds-8f248edf51a4f0a3.d: crates/cds/src/lib.rs crates/cds/src/cache.rs crates/cds/src/file.rs

/root/repo/target/release/deps/libcds-8f248edf51a4f0a3.rlib: crates/cds/src/lib.rs crates/cds/src/cache.rs crates/cds/src/file.rs

/root/repo/target/release/deps/libcds-8f248edf51a4f0a3.rmeta: crates/cds/src/lib.rs crates/cds/src/cache.rs crates/cds/src/file.rs

crates/cds/src/lib.rs:
crates/cds/src/cache.rs:
crates/cds/src/file.rs:
