/root/repo/target/release/deps/timeline-84f5fcaa3e6b5cf9.d: crates/bench/src/bin/timeline.rs

/root/repo/target/release/deps/timeline-84f5fcaa3e6b5cf9: crates/bench/src/bin/timeline.rs

crates/bench/src/bin/timeline.rs:
