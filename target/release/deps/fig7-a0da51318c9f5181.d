/root/repo/target/release/deps/fig7-a0da51318c9f5181.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-a0da51318c9f5181: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
