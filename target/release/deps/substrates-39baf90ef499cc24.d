/root/repo/target/release/deps/substrates-39baf90ef499cc24.d: crates/bench/benches/substrates.rs

/root/repo/target/release/deps/substrates-39baf90ef499cc24: crates/bench/benches/substrates.rs

crates/bench/benches/substrates.rs:
