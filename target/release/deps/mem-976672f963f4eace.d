/root/repo/target/release/deps/mem-976672f963f4eace.d: crates/mem/src/lib.rs crates/mem/src/fingerprint.rs crates/mem/src/layout.rs crates/mem/src/phys.rs crates/mem/src/tick.rs

/root/repo/target/release/deps/libmem-976672f963f4eace.rlib: crates/mem/src/lib.rs crates/mem/src/fingerprint.rs crates/mem/src/layout.rs crates/mem/src/phys.rs crates/mem/src/tick.rs

/root/repo/target/release/deps/libmem-976672f963f4eace.rmeta: crates/mem/src/lib.rs crates/mem/src/fingerprint.rs crates/mem/src/layout.rs crates/mem/src/phys.rs crates/mem/src/tick.rs

crates/mem/src/lib.rs:
crates/mem/src/fingerprint.rs:
crates/mem/src/layout.rs:
crates/mem/src/phys.rs:
crates/mem/src/tick.rs:
