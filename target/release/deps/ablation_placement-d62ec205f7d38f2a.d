/root/repo/target/release/deps/ablation_placement-d62ec205f7d38f2a.d: crates/bench/src/bin/ablation_placement.rs

/root/repo/target/release/deps/ablation_placement-d62ec205f7d38f2a: crates/bench/src/bin/ablation_placement.rs

crates/bench/src/bin/ablation_placement.rs:
