/root/repo/target/release/deps/ablation_related_work-9499b4b1ef5e9db6.d: crates/bench/src/bin/ablation_related_work.rs

/root/repo/target/release/deps/ablation_related_work-9499b4b1ef5e9db6: crates/bench/src/bin/ablation_related_work.rs

crates/bench/src/bin/ablation_related_work.rs:
