/root/repo/target/release/deps/bench-febe9ff842d72aba.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-febe9ff842d72aba.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-febe9ff842d72aba.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
