/root/repo/target/debug/examples/dbg-9115012582f5424e.d: crates/tpslab/examples/dbg.rs Cargo.toml

/root/repo/target/debug/examples/libdbg-9115012582f5424e.rmeta: crates/tpslab/examples/dbg.rs Cargo.toml

crates/tpslab/examples/dbg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
