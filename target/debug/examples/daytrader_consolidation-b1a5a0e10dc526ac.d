/root/repo/target/debug/examples/daytrader_consolidation-b1a5a0e10dc526ac.d: examples/daytrader_consolidation.rs Cargo.toml

/root/repo/target/debug/examples/libdaytrader_consolidation-b1a5a0e10dc526ac.rmeta: examples/daytrader_consolidation.rs Cargo.toml

examples/daytrader_consolidation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
