/root/repo/target/debug/examples/powervm_tps-f75b8cdfea6eff0f.d: examples/powervm_tps.rs Cargo.toml

/root/repo/target/debug/examples/libpowervm_tps-f75b8cdfea6eff0f.rmeta: examples/powervm_tps.rs Cargo.toml

examples/powervm_tps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
