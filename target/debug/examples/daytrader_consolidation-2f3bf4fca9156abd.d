/root/repo/target/debug/examples/daytrader_consolidation-2f3bf4fca9156abd.d: examples/daytrader_consolidation.rs

/root/repo/target/debug/examples/daytrader_consolidation-2f3bf4fca9156abd: examples/daytrader_consolidation.rs

examples/daytrader_consolidation.rs:
