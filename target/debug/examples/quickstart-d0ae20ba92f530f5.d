/root/repo/target/debug/examples/quickstart-d0ae20ba92f530f5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d0ae20ba92f530f5: examples/quickstart.rs

examples/quickstart.rs:
