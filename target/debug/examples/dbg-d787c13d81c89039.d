/root/repo/target/debug/examples/dbg-d787c13d81c89039.d: crates/tpslab/examples/dbg.rs

/root/repo/target/debug/examples/dbg-d787c13d81c89039: crates/tpslab/examples/dbg.rs

crates/tpslab/examples/dbg.rs:
