/root/repo/target/debug/examples/cache_preload_pipeline-3525e764da7f4484.d: examples/cache_preload_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libcache_preload_pipeline-3525e764da7f4484.rmeta: examples/cache_preload_pipeline.rs Cargo.toml

examples/cache_preload_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
