/root/repo/target/debug/examples/cache_preload_pipeline-18e8050c6bcd5dce.d: examples/cache_preload_pipeline.rs

/root/repo/target/debug/examples/cache_preload_pipeline-18e8050c6bcd5dce: examples/cache_preload_pipeline.rs

examples/cache_preload_pipeline.rs:
