/root/repo/target/debug/examples/powervm_tps-8bf50bcf09fface6.d: examples/powervm_tps.rs

/root/repo/target/debug/examples/powervm_tps-8bf50bcf09fface6: examples/powervm_tps.rs

examples/powervm_tps.rs:
