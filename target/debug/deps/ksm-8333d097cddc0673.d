/root/repo/target/debug/deps/ksm-8333d097cddc0673.d: crates/ksm/src/lib.rs crates/ksm/src/params.rs crates/ksm/src/powervm.rs crates/ksm/src/scanner.rs crates/ksm/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libksm-8333d097cddc0673.rmeta: crates/ksm/src/lib.rs crates/ksm/src/params.rs crates/ksm/src/powervm.rs crates/ksm/src/scanner.rs crates/ksm/src/stats.rs Cargo.toml

crates/ksm/src/lib.rs:
crates/ksm/src/params.rs:
crates/ksm/src/powervm.rs:
crates/ksm/src/scanner.rs:
crates/ksm/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
