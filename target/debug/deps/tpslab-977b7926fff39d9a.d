/root/repo/target/debug/deps/tpslab-977b7926fff39d9a.d: crates/tpslab/src/lib.rs crates/tpslab/src/config.rs crates/tpslab/src/powervm.rs crates/tpslab/src/report.rs crates/tpslab/src/run.rs crates/tpslab/src/sweep.rs

/root/repo/target/debug/deps/tpslab-977b7926fff39d9a: crates/tpslab/src/lib.rs crates/tpslab/src/config.rs crates/tpslab/src/powervm.rs crates/tpslab/src/report.rs crates/tpslab/src/run.rs crates/tpslab/src/sweep.rs

crates/tpslab/src/lib.rs:
crates/tpslab/src/config.rs:
crates/tpslab/src/powervm.rs:
crates/tpslab/src/report.rs:
crates/tpslab/src/run.rs:
crates/tpslab/src/sweep.rs:
