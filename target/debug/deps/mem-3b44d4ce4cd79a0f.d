/root/repo/target/debug/deps/mem-3b44d4ce4cd79a0f.d: crates/mem/src/lib.rs crates/mem/src/fingerprint.rs crates/mem/src/layout.rs crates/mem/src/phys.rs crates/mem/src/tick.rs Cargo.toml

/root/repo/target/debug/deps/libmem-3b44d4ce4cd79a0f.rmeta: crates/mem/src/lib.rs crates/mem/src/fingerprint.rs crates/mem/src/layout.rs crates/mem/src/phys.rs crates/mem/src/tick.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/fingerprint.rs:
crates/mem/src/layout.rs:
crates/mem/src/phys.rs:
crates/mem/src/tick.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
