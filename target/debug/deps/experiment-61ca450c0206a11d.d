/root/repo/target/debug/deps/experiment-61ca450c0206a11d.d: crates/bench/benches/experiment.rs Cargo.toml

/root/repo/target/debug/deps/libexperiment-61ca450c0206a11d.rmeta: crates/bench/benches/experiment.rs Cargo.toml

crates/bench/benches/experiment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
