/root/repo/target/debug/deps/tps_java_repro-743b319a8e47180d.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libtps_java_repro-743b319a8e47180d.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
