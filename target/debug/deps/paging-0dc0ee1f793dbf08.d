/root/repo/target/debug/deps/paging-0dc0ee1f793dbf08.d: crates/paging/src/lib.rs crates/paging/src/hostmm.rs crates/paging/src/malloc.rs crates/paging/src/rmap.rs crates/paging/src/space.rs crates/paging/src/tag.rs

/root/repo/target/debug/deps/libpaging-0dc0ee1f793dbf08.rlib: crates/paging/src/lib.rs crates/paging/src/hostmm.rs crates/paging/src/malloc.rs crates/paging/src/rmap.rs crates/paging/src/space.rs crates/paging/src/tag.rs

/root/repo/target/debug/deps/libpaging-0dc0ee1f793dbf08.rmeta: crates/paging/src/lib.rs crates/paging/src/hostmm.rs crates/paging/src/malloc.rs crates/paging/src/rmap.rs crates/paging/src/space.rs crates/paging/src/tag.rs

crates/paging/src/lib.rs:
crates/paging/src/hostmm.rs:
crates/paging/src/malloc.rs:
crates/paging/src/rmap.rs:
crates/paging/src/space.rs:
crates/paging/src/tag.rs:
