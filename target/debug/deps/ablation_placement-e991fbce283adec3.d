/root/repo/target/debug/deps/ablation_placement-e991fbce283adec3.d: crates/bench/src/bin/ablation_placement.rs Cargo.toml

/root/repo/target/debug/deps/libablation_placement-e991fbce283adec3.rmeta: crates/bench/src/bin/ablation_placement.rs Cargo.toml

crates/bench/src/bin/ablation_placement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
