/root/repo/target/debug/deps/cds-3a7496382c29b0dc.d: crates/cds/src/lib.rs crates/cds/src/cache.rs crates/cds/src/file.rs Cargo.toml

/root/repo/target/debug/deps/libcds-3a7496382c29b0dc.rmeta: crates/cds/src/lib.rs crates/cds/src/cache.rs crates/cds/src/file.rs Cargo.toml

crates/cds/src/lib.rs:
crates/cds/src/cache.rs:
crates/cds/src/file.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
