/root/repo/target/debug/deps/proptest_layout-7e16cada33f2f5c0.d: crates/mem/tests/proptest_layout.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_layout-7e16cada33f2f5c0.rmeta: crates/mem/tests/proptest_layout.rs Cargo.toml

crates/mem/tests/proptest_layout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
