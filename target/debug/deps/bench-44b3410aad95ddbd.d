/root/repo/target/debug/deps/bench-44b3410aad95ddbd.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-44b3410aad95ddbd.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-44b3410aad95ddbd.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
