/root/repo/target/debug/deps/analysis-c2465c4e971afbe2.d: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/render.rs crates/analysis/src/snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis-c2465c4e971afbe2.rmeta: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/render.rs crates/analysis/src/snapshot.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/breakdown.rs:
crates/analysis/src/render.rs:
crates/analysis/src/snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
