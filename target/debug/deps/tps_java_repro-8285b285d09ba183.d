/root/repo/target/debug/deps/tps_java_repro-8285b285d09ba183.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libtps_java_repro-8285b285d09ba183.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
