/root/repo/target/debug/deps/ablation_balloon-5a9ac4d15ed647df.d: crates/bench/src/bin/ablation_balloon.rs

/root/repo/target/debug/deps/ablation_balloon-5a9ac4d15ed647df: crates/bench/src/bin/ablation_balloon.rs

crates/bench/src/bin/ablation_balloon.rs:
