/root/repo/target/debug/deps/fig8-7dc21da201e92d51.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-7dc21da201e92d51: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
