/root/repo/target/debug/deps/proptest_guestos-149a1b9c121820cf.d: crates/oskernel/tests/proptest_guestos.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_guestos-149a1b9c121820cf.rmeta: crates/oskernel/tests/proptest_guestos.rs Cargo.toml

crates/oskernel/tests/proptest_guestos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
