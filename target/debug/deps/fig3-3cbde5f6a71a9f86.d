/root/repo/target/debug/deps/fig3-3cbde5f6a71a9f86.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-3cbde5f6a71a9f86: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
