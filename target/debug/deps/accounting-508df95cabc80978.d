/root/repo/target/debug/deps/accounting-508df95cabc80978.d: tests/accounting.rs

/root/repo/target/debug/deps/accounting-508df95cabc80978: tests/accounting.rs

tests/accounting.rs:
