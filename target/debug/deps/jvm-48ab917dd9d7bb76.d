/root/repo/target/debug/deps/jvm-48ab917dd9d7bb76.d: crates/jvm/src/lib.rs crates/jvm/src/category.rs crates/jvm/src/classes.rs crates/jvm/src/classloader.rs crates/jvm/src/codearea.rs crates/jvm/src/fill.rs crates/jvm/src/heap.rs crates/jvm/src/jit.rs crates/jvm/src/profile.rs crates/jvm/src/stack.rs crates/jvm/src/vm.rs crates/jvm/src/workarea.rs Cargo.toml

/root/repo/target/debug/deps/libjvm-48ab917dd9d7bb76.rmeta: crates/jvm/src/lib.rs crates/jvm/src/category.rs crates/jvm/src/classes.rs crates/jvm/src/classloader.rs crates/jvm/src/codearea.rs crates/jvm/src/fill.rs crates/jvm/src/heap.rs crates/jvm/src/jit.rs crates/jvm/src/profile.rs crates/jvm/src/stack.rs crates/jvm/src/vm.rs crates/jvm/src/workarea.rs Cargo.toml

crates/jvm/src/lib.rs:
crates/jvm/src/category.rs:
crates/jvm/src/classes.rs:
crates/jvm/src/classloader.rs:
crates/jvm/src/codearea.rs:
crates/jvm/src/fill.rs:
crates/jvm/src/heap.rs:
crates/jvm/src/jit.rs:
crates/jvm/src/profile.rs:
crates/jvm/src/stack.rs:
crates/jvm/src/vm.rs:
crates/jvm/src/workarea.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
