/root/repo/target/debug/deps/ksm-6c200a0b409a042f.d: crates/ksm/src/lib.rs crates/ksm/src/params.rs crates/ksm/src/powervm.rs crates/ksm/src/scanner.rs crates/ksm/src/stats.rs

/root/repo/target/debug/deps/libksm-6c200a0b409a042f.rlib: crates/ksm/src/lib.rs crates/ksm/src/params.rs crates/ksm/src/powervm.rs crates/ksm/src/scanner.rs crates/ksm/src/stats.rs

/root/repo/target/debug/deps/libksm-6c200a0b409a042f.rmeta: crates/ksm/src/lib.rs crates/ksm/src/params.rs crates/ksm/src/powervm.rs crates/ksm/src/scanner.rs crates/ksm/src/stats.rs

crates/ksm/src/lib.rs:
crates/ksm/src/params.rs:
crates/ksm/src/powervm.rs:
crates/ksm/src/scanner.rs:
crates/ksm/src/stats.rs:
