/root/repo/target/debug/deps/oskernel-e9c73243ed34aa2f.d: crates/oskernel/src/lib.rs crates/oskernel/src/guestas.rs crates/oskernel/src/guestos.rs crates/oskernel/src/image.rs crates/oskernel/src/smaps.rs

/root/repo/target/debug/deps/oskernel-e9c73243ed34aa2f: crates/oskernel/src/lib.rs crates/oskernel/src/guestas.rs crates/oskernel/src/guestos.rs crates/oskernel/src/image.rs crates/oskernel/src/smaps.rs

crates/oskernel/src/lib.rs:
crates/oskernel/src/guestas.rs:
crates/oskernel/src/guestos.rs:
crates/oskernel/src/image.rs:
crates/oskernel/src/smaps.rs:
