/root/repo/target/debug/deps/workloads-583c662b1b1b4d84.d: crates/workloads/src/lib.rs crates/workloads/src/driver.rs crates/workloads/src/presets.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-583c662b1b1b4d84.rmeta: crates/workloads/src/lib.rs crates/workloads/src/driver.rs crates/workloads/src/presets.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/presets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
