/root/repo/target/debug/deps/timeline-b90243660f472e01.d: crates/bench/src/bin/timeline.rs Cargo.toml

/root/repo/target/debug/deps/libtimeline-b90243660f472e01.rmeta: crates/bench/src/bin/timeline.rs Cargo.toml

crates/bench/src/bin/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
