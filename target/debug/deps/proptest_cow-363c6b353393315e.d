/root/repo/target/debug/deps/proptest_cow-363c6b353393315e.d: crates/paging/tests/proptest_cow.rs

/root/repo/target/debug/deps/proptest_cow-363c6b353393315e: crates/paging/tests/proptest_cow.rs

crates/paging/tests/proptest_cow.rs:
