/root/repo/target/debug/deps/oskernel-1ffccf22b503ba8d.d: crates/oskernel/src/lib.rs crates/oskernel/src/guestas.rs crates/oskernel/src/guestos.rs crates/oskernel/src/image.rs crates/oskernel/src/smaps.rs

/root/repo/target/debug/deps/liboskernel-1ffccf22b503ba8d.rlib: crates/oskernel/src/lib.rs crates/oskernel/src/guestas.rs crates/oskernel/src/guestos.rs crates/oskernel/src/image.rs crates/oskernel/src/smaps.rs

/root/repo/target/debug/deps/liboskernel-1ffccf22b503ba8d.rmeta: crates/oskernel/src/lib.rs crates/oskernel/src/guestas.rs crates/oskernel/src/guestos.rs crates/oskernel/src/image.rs crates/oskernel/src/smaps.rs

crates/oskernel/src/lib.rs:
crates/oskernel/src/guestas.rs:
crates/oskernel/src/guestos.rs:
crates/oskernel/src/image.rs:
crates/oskernel/src/smaps.rs:
