/root/repo/target/debug/deps/fig6-924e97d7c65d96c0.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-924e97d7c65d96c0: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
