/root/repo/target/debug/deps/cache_portability-431e813540ad02b7.d: tests/cache_portability.rs

/root/repo/target/debug/deps/cache_portability-431e813540ad02b7: tests/cache_portability.rs

tests/cache_portability.rs:
