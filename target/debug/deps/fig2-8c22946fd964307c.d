/root/repo/target/debug/deps/fig2-8c22946fd964307c.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-8c22946fd964307c: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
