/root/repo/target/debug/deps/bench-9f22c9f0d4f9d2a1.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-9f22c9f0d4f9d2a1.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
