/root/repo/target/debug/deps/fig6-42ec1e1db8e01ecc.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-42ec1e1db8e01ecc: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
