/root/repo/target/debug/deps/hypervisor-14101e0058afb8a8.d: crates/hypervisor/src/lib.rs crates/hypervisor/src/balloon.rs crates/hypervisor/src/diffengine.rs crates/hypervisor/src/kvm.rs crates/hypervisor/src/pagingmodel.rs crates/hypervisor/src/placement.rs crates/hypervisor/src/powervm.rs crates/hypervisor/src/satori.rs

/root/repo/target/debug/deps/hypervisor-14101e0058afb8a8: crates/hypervisor/src/lib.rs crates/hypervisor/src/balloon.rs crates/hypervisor/src/diffengine.rs crates/hypervisor/src/kvm.rs crates/hypervisor/src/pagingmodel.rs crates/hypervisor/src/placement.rs crates/hypervisor/src/powervm.rs crates/hypervisor/src/satori.rs

crates/hypervisor/src/lib.rs:
crates/hypervisor/src/balloon.rs:
crates/hypervisor/src/diffengine.rs:
crates/hypervisor/src/kvm.rs:
crates/hypervisor/src/pagingmodel.rs:
crates/hypervisor/src/placement.rs:
crates/hypervisor/src/powervm.rs:
crates/hypervisor/src/satori.rs:
