/root/repo/target/debug/deps/paging-4f6b0f49bcaf80ec.d: crates/paging/src/lib.rs crates/paging/src/hostmm.rs crates/paging/src/malloc.rs crates/paging/src/rmap.rs crates/paging/src/space.rs crates/paging/src/tag.rs

/root/repo/target/debug/deps/paging-4f6b0f49bcaf80ec: crates/paging/src/lib.rs crates/paging/src/hostmm.rs crates/paging/src/malloc.rs crates/paging/src/rmap.rs crates/paging/src/space.rs crates/paging/src/tag.rs

crates/paging/src/lib.rs:
crates/paging/src/hostmm.rs:
crates/paging/src/malloc.rs:
crates/paging/src/rmap.rs:
crates/paging/src/space.rs:
crates/paging/src/tag.rs:
