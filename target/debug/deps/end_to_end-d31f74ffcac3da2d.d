/root/repo/target/debug/deps/end_to_end-d31f74ffcac3da2d.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-d31f74ffcac3da2d: tests/end_to_end.rs

tests/end_to_end.rs:
