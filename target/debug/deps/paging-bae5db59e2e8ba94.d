/root/repo/target/debug/deps/paging-bae5db59e2e8ba94.d: crates/paging/src/lib.rs crates/paging/src/hostmm.rs crates/paging/src/malloc.rs crates/paging/src/rmap.rs crates/paging/src/space.rs crates/paging/src/tag.rs Cargo.toml

/root/repo/target/debug/deps/libpaging-bae5db59e2e8ba94.rmeta: crates/paging/src/lib.rs crates/paging/src/hostmm.rs crates/paging/src/malloc.rs crates/paging/src/rmap.rs crates/paging/src/space.rs crates/paging/src/tag.rs Cargo.toml

crates/paging/src/lib.rs:
crates/paging/src/hostmm.rs:
crates/paging/src/malloc.rs:
crates/paging/src/rmap.rs:
crates/paging/src/space.rs:
crates/paging/src/tag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
