/root/repo/target/debug/deps/tps_java_repro-d62e26a49e423f91.d: src/main.rs

/root/repo/target/debug/deps/tps_java_repro-d62e26a49e423f91: src/main.rs

src/main.rs:
