/root/repo/target/debug/deps/ablation_balloon-170762112bbd4392.d: crates/bench/src/bin/ablation_balloon.rs Cargo.toml

/root/repo/target/debug/deps/libablation_balloon-170762112bbd4392.rmeta: crates/bench/src/bin/ablation_balloon.rs Cargo.toml

crates/bench/src/bin/ablation_balloon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
