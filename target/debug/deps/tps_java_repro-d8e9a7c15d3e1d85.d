/root/repo/target/debug/deps/tps_java_repro-d8e9a7c15d3e1d85.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libtps_java_repro-d8e9a7c15d3e1d85.rlib: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libtps_java_repro-d8e9a7c15d3e1d85.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
