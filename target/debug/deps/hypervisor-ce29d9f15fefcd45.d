/root/repo/target/debug/deps/hypervisor-ce29d9f15fefcd45.d: crates/hypervisor/src/lib.rs crates/hypervisor/src/balloon.rs crates/hypervisor/src/diffengine.rs crates/hypervisor/src/kvm.rs crates/hypervisor/src/pagingmodel.rs crates/hypervisor/src/placement.rs crates/hypervisor/src/powervm.rs crates/hypervisor/src/satori.rs

/root/repo/target/debug/deps/libhypervisor-ce29d9f15fefcd45.rlib: crates/hypervisor/src/lib.rs crates/hypervisor/src/balloon.rs crates/hypervisor/src/diffengine.rs crates/hypervisor/src/kvm.rs crates/hypervisor/src/pagingmodel.rs crates/hypervisor/src/placement.rs crates/hypervisor/src/powervm.rs crates/hypervisor/src/satori.rs

/root/repo/target/debug/deps/libhypervisor-ce29d9f15fefcd45.rmeta: crates/hypervisor/src/lib.rs crates/hypervisor/src/balloon.rs crates/hypervisor/src/diffengine.rs crates/hypervisor/src/kvm.rs crates/hypervisor/src/pagingmodel.rs crates/hypervisor/src/placement.rs crates/hypervisor/src/powervm.rs crates/hypervisor/src/satori.rs

crates/hypervisor/src/lib.rs:
crates/hypervisor/src/balloon.rs:
crates/hypervisor/src/diffengine.rs:
crates/hypervisor/src/kvm.rs:
crates/hypervisor/src/pagingmodel.rs:
crates/hypervisor/src/placement.rs:
crates/hypervisor/src/powervm.rs:
crates/hypervisor/src/satori.rs:
