/root/repo/target/debug/deps/tables-4f7c287e73ae1ea2.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-4f7c287e73ae1ea2: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
