/root/repo/target/debug/deps/tps_java_repro-e4c8c273c6842fd7.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libtps_java_repro-e4c8c273c6842fd7.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
