/root/repo/target/debug/deps/cds-a9705f4df33da6f7.d: crates/cds/src/lib.rs crates/cds/src/cache.rs crates/cds/src/file.rs Cargo.toml

/root/repo/target/debug/deps/libcds-a9705f4df33da6f7.rmeta: crates/cds/src/lib.rs crates/cds/src/cache.rs crates/cds/src/file.rs Cargo.toml

crates/cds/src/lib.rs:
crates/cds/src/cache.rs:
crates/cds/src/file.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
