/root/repo/target/debug/deps/fig7-0a6bbd5ea1e35b3f.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-0a6bbd5ea1e35b3f: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
