/root/repo/target/debug/deps/fig7-d414f4ef7749dac5.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-d414f4ef7749dac5: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
