/root/repo/target/debug/deps/ablation_placement-6dbd1622b47b3ad8.d: crates/bench/src/bin/ablation_placement.rs

/root/repo/target/debug/deps/ablation_placement-6dbd1622b47b3ad8: crates/bench/src/bin/ablation_placement.rs

crates/bench/src/bin/ablation_placement.rs:
