/root/repo/target/debug/deps/mem-a5a3921e9fb79312.d: crates/mem/src/lib.rs crates/mem/src/fingerprint.rs crates/mem/src/layout.rs crates/mem/src/phys.rs crates/mem/src/tick.rs

/root/repo/target/debug/deps/mem-a5a3921e9fb79312: crates/mem/src/lib.rs crates/mem/src/fingerprint.rs crates/mem/src/layout.rs crates/mem/src/phys.rs crates/mem/src/tick.rs

crates/mem/src/lib.rs:
crates/mem/src/fingerprint.rs:
crates/mem/src/layout.rs:
crates/mem/src/phys.rs:
crates/mem/src/tick.rs:
