/root/repo/target/debug/deps/tpslab-7f5599e6aba1fc24.d: crates/tpslab/src/lib.rs crates/tpslab/src/config.rs crates/tpslab/src/powervm.rs crates/tpslab/src/report.rs crates/tpslab/src/run.rs crates/tpslab/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libtpslab-7f5599e6aba1fc24.rmeta: crates/tpslab/src/lib.rs crates/tpslab/src/config.rs crates/tpslab/src/powervm.rs crates/tpslab/src/report.rs crates/tpslab/src/run.rs crates/tpslab/src/sweep.rs Cargo.toml

crates/tpslab/src/lib.rs:
crates/tpslab/src/config.rs:
crates/tpslab/src/powervm.rs:
crates/tpslab/src/report.rs:
crates/tpslab/src/run.rs:
crates/tpslab/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
