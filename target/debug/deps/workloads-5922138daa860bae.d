/root/repo/target/debug/deps/workloads-5922138daa860bae.d: crates/workloads/src/lib.rs crates/workloads/src/driver.rs crates/workloads/src/presets.rs

/root/repo/target/debug/deps/workloads-5922138daa860bae: crates/workloads/src/lib.rs crates/workloads/src/driver.rs crates/workloads/src/presets.rs

crates/workloads/src/lib.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/presets.rs:
