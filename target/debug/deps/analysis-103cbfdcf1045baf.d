/root/repo/target/debug/deps/analysis-103cbfdcf1045baf.d: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/render.rs crates/analysis/src/snapshot.rs

/root/repo/target/debug/deps/analysis-103cbfdcf1045baf: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/render.rs crates/analysis/src/snapshot.rs

crates/analysis/src/lib.rs:
crates/analysis/src/breakdown.rs:
crates/analysis/src/render.rs:
crates/analysis/src/snapshot.rs:
