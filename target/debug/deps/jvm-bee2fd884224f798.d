/root/repo/target/debug/deps/jvm-bee2fd884224f798.d: crates/jvm/src/lib.rs crates/jvm/src/category.rs crates/jvm/src/classes.rs crates/jvm/src/classloader.rs crates/jvm/src/codearea.rs crates/jvm/src/fill.rs crates/jvm/src/heap.rs crates/jvm/src/jit.rs crates/jvm/src/profile.rs crates/jvm/src/stack.rs crates/jvm/src/vm.rs crates/jvm/src/workarea.rs

/root/repo/target/debug/deps/libjvm-bee2fd884224f798.rlib: crates/jvm/src/lib.rs crates/jvm/src/category.rs crates/jvm/src/classes.rs crates/jvm/src/classloader.rs crates/jvm/src/codearea.rs crates/jvm/src/fill.rs crates/jvm/src/heap.rs crates/jvm/src/jit.rs crates/jvm/src/profile.rs crates/jvm/src/stack.rs crates/jvm/src/vm.rs crates/jvm/src/workarea.rs

/root/repo/target/debug/deps/libjvm-bee2fd884224f798.rmeta: crates/jvm/src/lib.rs crates/jvm/src/category.rs crates/jvm/src/classes.rs crates/jvm/src/classloader.rs crates/jvm/src/codearea.rs crates/jvm/src/fill.rs crates/jvm/src/heap.rs crates/jvm/src/jit.rs crates/jvm/src/profile.rs crates/jvm/src/stack.rs crates/jvm/src/vm.rs crates/jvm/src/workarea.rs

crates/jvm/src/lib.rs:
crates/jvm/src/category.rs:
crates/jvm/src/classes.rs:
crates/jvm/src/classloader.rs:
crates/jvm/src/codearea.rs:
crates/jvm/src/fill.rs:
crates/jvm/src/heap.rs:
crates/jvm/src/jit.rs:
crates/jvm/src/profile.rs:
crates/jvm/src/stack.rs:
crates/jvm/src/vm.rs:
crates/jvm/src/workarea.rs:
