/root/repo/target/debug/deps/fig3-dc02611a72861cdc.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-dc02611a72861cdc: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
