/root/repo/target/debug/deps/tpslab-308a627e686739f5.d: crates/tpslab/src/lib.rs crates/tpslab/src/config.rs crates/tpslab/src/powervm.rs crates/tpslab/src/report.rs crates/tpslab/src/run.rs crates/tpslab/src/sweep.rs

/root/repo/target/debug/deps/libtpslab-308a627e686739f5.rlib: crates/tpslab/src/lib.rs crates/tpslab/src/config.rs crates/tpslab/src/powervm.rs crates/tpslab/src/report.rs crates/tpslab/src/run.rs crates/tpslab/src/sweep.rs

/root/repo/target/debug/deps/libtpslab-308a627e686739f5.rmeta: crates/tpslab/src/lib.rs crates/tpslab/src/config.rs crates/tpslab/src/powervm.rs crates/tpslab/src/report.rs crates/tpslab/src/run.rs crates/tpslab/src/sweep.rs

crates/tpslab/src/lib.rs:
crates/tpslab/src/config.rs:
crates/tpslab/src/powervm.rs:
crates/tpslab/src/report.rs:
crates/tpslab/src/run.rs:
crates/tpslab/src/sweep.rs:
