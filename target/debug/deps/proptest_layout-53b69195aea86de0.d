/root/repo/target/debug/deps/proptest_layout-53b69195aea86de0.d: crates/mem/tests/proptest_layout.rs

/root/repo/target/debug/deps/proptest_layout-53b69195aea86de0: crates/mem/tests/proptest_layout.rs

crates/mem/tests/proptest_layout.rs:
