/root/repo/target/debug/deps/ablation_related_work-128d4cedcc92a19d.d: crates/bench/src/bin/ablation_related_work.rs

/root/repo/target/debug/deps/ablation_related_work-128d4cedcc92a19d: crates/bench/src/bin/ablation_related_work.rs

crates/bench/src/bin/ablation_related_work.rs:
