/root/repo/target/debug/deps/tps_java_repro-8057362170c10c08.d: src/main.rs

/root/repo/target/debug/deps/tps_java_repro-8057362170c10c08: src/main.rs

src/main.rs:
