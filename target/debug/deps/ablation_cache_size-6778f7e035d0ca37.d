/root/repo/target/debug/deps/ablation_cache_size-6778f7e035d0ca37.d: crates/bench/src/bin/ablation_cache_size.rs

/root/repo/target/debug/deps/ablation_cache_size-6778f7e035d0ca37: crates/bench/src/bin/ablation_cache_size.rs

crates/bench/src/bin/ablation_cache_size.rs:
