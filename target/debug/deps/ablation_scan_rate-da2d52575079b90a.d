/root/repo/target/debug/deps/ablation_scan_rate-da2d52575079b90a.d: crates/bench/src/bin/ablation_scan_rate.rs Cargo.toml

/root/repo/target/debug/deps/libablation_scan_rate-da2d52575079b90a.rmeta: crates/bench/src/bin/ablation_scan_rate.rs Cargo.toml

crates/bench/src/bin/ablation_scan_rate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
