/root/repo/target/debug/deps/hypervisor-cdb918d23a8d9522.d: crates/hypervisor/src/lib.rs crates/hypervisor/src/balloon.rs crates/hypervisor/src/diffengine.rs crates/hypervisor/src/kvm.rs crates/hypervisor/src/pagingmodel.rs crates/hypervisor/src/placement.rs crates/hypervisor/src/powervm.rs crates/hypervisor/src/satori.rs Cargo.toml

/root/repo/target/debug/deps/libhypervisor-cdb918d23a8d9522.rmeta: crates/hypervisor/src/lib.rs crates/hypervisor/src/balloon.rs crates/hypervisor/src/diffengine.rs crates/hypervisor/src/kvm.rs crates/hypervisor/src/pagingmodel.rs crates/hypervisor/src/placement.rs crates/hypervisor/src/powervm.rs crates/hypervisor/src/satori.rs Cargo.toml

crates/hypervisor/src/lib.rs:
crates/hypervisor/src/balloon.rs:
crates/hypervisor/src/diffengine.rs:
crates/hypervisor/src/kvm.rs:
crates/hypervisor/src/pagingmodel.rs:
crates/hypervisor/src/placement.rs:
crates/hypervisor/src/powervm.rs:
crates/hypervisor/src/satori.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
