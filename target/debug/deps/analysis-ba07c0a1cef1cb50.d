/root/repo/target/debug/deps/analysis-ba07c0a1cef1cb50.d: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/render.rs crates/analysis/src/snapshot.rs

/root/repo/target/debug/deps/libanalysis-ba07c0a1cef1cb50.rlib: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/render.rs crates/analysis/src/snapshot.rs

/root/repo/target/debug/deps/libanalysis-ba07c0a1cef1cb50.rmeta: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/render.rs crates/analysis/src/snapshot.rs

crates/analysis/src/lib.rs:
crates/analysis/src/breakdown.rs:
crates/analysis/src/render.rs:
crates/analysis/src/snapshot.rs:
