/root/repo/target/debug/deps/ablation_cache_size-574828a7e2875664.d: crates/bench/src/bin/ablation_cache_size.rs Cargo.toml

/root/repo/target/debug/deps/libablation_cache_size-574828a7e2875664.rmeta: crates/bench/src/bin/ablation_cache_size.rs Cargo.toml

crates/bench/src/bin/ablation_cache_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
