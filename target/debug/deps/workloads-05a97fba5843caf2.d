/root/repo/target/debug/deps/workloads-05a97fba5843caf2.d: crates/workloads/src/lib.rs crates/workloads/src/driver.rs crates/workloads/src/presets.rs

/root/repo/target/debug/deps/libworkloads-05a97fba5843caf2.rlib: crates/workloads/src/lib.rs crates/workloads/src/driver.rs crates/workloads/src/presets.rs

/root/repo/target/debug/deps/libworkloads-05a97fba5843caf2.rmeta: crates/workloads/src/lib.rs crates/workloads/src/driver.rs crates/workloads/src/presets.rs

crates/workloads/src/lib.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/presets.rs:
