/root/repo/target/debug/deps/fig5-d6e516e43607f769.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-d6e516e43607f769: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
