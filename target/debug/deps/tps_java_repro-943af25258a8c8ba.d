/root/repo/target/debug/deps/tps_java_repro-943af25258a8c8ba.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libtps_java_repro-943af25258a8c8ba.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
