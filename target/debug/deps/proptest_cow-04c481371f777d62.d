/root/repo/target/debug/deps/proptest_cow-04c481371f777d62.d: crates/paging/tests/proptest_cow.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_cow-04c481371f777d62.rmeta: crates/paging/tests/proptest_cow.rs Cargo.toml

crates/paging/tests/proptest_cow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
