/root/repo/target/debug/deps/fig2-11f3db6455015db5.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-11f3db6455015db5: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
