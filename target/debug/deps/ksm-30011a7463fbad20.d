/root/repo/target/debug/deps/ksm-30011a7463fbad20.d: crates/ksm/src/lib.rs crates/ksm/src/params.rs crates/ksm/src/powervm.rs crates/ksm/src/scanner.rs crates/ksm/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libksm-30011a7463fbad20.rmeta: crates/ksm/src/lib.rs crates/ksm/src/params.rs crates/ksm/src/powervm.rs crates/ksm/src/scanner.rs crates/ksm/src/stats.rs Cargo.toml

crates/ksm/src/lib.rs:
crates/ksm/src/params.rs:
crates/ksm/src/powervm.rs:
crates/ksm/src/scanner.rs:
crates/ksm/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
