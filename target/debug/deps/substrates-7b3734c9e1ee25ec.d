/root/repo/target/debug/deps/substrates-7b3734c9e1ee25ec.d: crates/bench/benches/substrates.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrates-7b3734c9e1ee25ec.rmeta: crates/bench/benches/substrates.rs Cargo.toml

crates/bench/benches/substrates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
