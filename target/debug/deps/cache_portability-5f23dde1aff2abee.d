/root/repo/target/debug/deps/cache_portability-5f23dde1aff2abee.d: tests/cache_portability.rs Cargo.toml

/root/repo/target/debug/deps/libcache_portability-5f23dde1aff2abee.rmeta: tests/cache_portability.rs Cargo.toml

tests/cache_portability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
