/root/repo/target/debug/deps/proptest_guestos-b68e6a3326617ce9.d: crates/oskernel/tests/proptest_guestos.rs

/root/repo/target/debug/deps/proptest_guestos-b68e6a3326617ce9: crates/oskernel/tests/proptest_guestos.rs

crates/oskernel/tests/proptest_guestos.rs:
