/root/repo/target/debug/deps/fig4-e1b01faa3a685b44.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-e1b01faa3a685b44: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
