/root/repo/target/debug/deps/bench-006908a445c63f01.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-006908a445c63f01: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
