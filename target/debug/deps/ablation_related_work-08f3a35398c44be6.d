/root/repo/target/debug/deps/ablation_related_work-08f3a35398c44be6.d: crates/bench/src/bin/ablation_related_work.rs Cargo.toml

/root/repo/target/debug/deps/libablation_related_work-08f3a35398c44be6.rmeta: crates/bench/src/bin/ablation_related_work.rs Cargo.toml

crates/bench/src/bin/ablation_related_work.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
