/root/repo/target/debug/deps/ksm-46e8d50d964200f3.d: crates/ksm/src/lib.rs crates/ksm/src/params.rs crates/ksm/src/powervm.rs crates/ksm/src/scanner.rs crates/ksm/src/stats.rs

/root/repo/target/debug/deps/ksm-46e8d50d964200f3: crates/ksm/src/lib.rs crates/ksm/src/params.rs crates/ksm/src/powervm.rs crates/ksm/src/scanner.rs crates/ksm/src/stats.rs

crates/ksm/src/lib.rs:
crates/ksm/src/params.rs:
crates/ksm/src/powervm.rs:
crates/ksm/src/scanner.rs:
crates/ksm/src/stats.rs:
