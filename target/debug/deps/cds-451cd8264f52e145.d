/root/repo/target/debug/deps/cds-451cd8264f52e145.d: crates/cds/src/lib.rs crates/cds/src/cache.rs crates/cds/src/file.rs

/root/repo/target/debug/deps/libcds-451cd8264f52e145.rlib: crates/cds/src/lib.rs crates/cds/src/cache.rs crates/cds/src/file.rs

/root/repo/target/debug/deps/libcds-451cd8264f52e145.rmeta: crates/cds/src/lib.rs crates/cds/src/cache.rs crates/cds/src/file.rs

crates/cds/src/lib.rs:
crates/cds/src/cache.rs:
crates/cds/src/file.rs:
