/root/repo/target/debug/deps/tables-e1a33eeac8651363.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-e1a33eeac8651363: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
