/root/repo/target/debug/deps/ablation_scan_rate-d55a563611e66681.d: crates/bench/src/bin/ablation_scan_rate.rs

/root/repo/target/debug/deps/ablation_scan_rate-d55a563611e66681: crates/bench/src/bin/ablation_scan_rate.rs

crates/bench/src/bin/ablation_scan_rate.rs:
