/root/repo/target/debug/deps/fig4-cff279f02981891a.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-cff279f02981891a: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
