/root/repo/target/debug/deps/ablation_placement-318bd733f19e116b.d: crates/bench/src/bin/ablation_placement.rs

/root/repo/target/debug/deps/ablation_placement-318bd733f19e116b: crates/bench/src/bin/ablation_placement.rs

crates/bench/src/bin/ablation_placement.rs:
