/root/repo/target/debug/deps/oskernel-e3c476afa57a5802.d: crates/oskernel/src/lib.rs crates/oskernel/src/guestas.rs crates/oskernel/src/guestos.rs crates/oskernel/src/image.rs crates/oskernel/src/smaps.rs Cargo.toml

/root/repo/target/debug/deps/liboskernel-e3c476afa57a5802.rmeta: crates/oskernel/src/lib.rs crates/oskernel/src/guestas.rs crates/oskernel/src/guestos.rs crates/oskernel/src/image.rs crates/oskernel/src/smaps.rs Cargo.toml

crates/oskernel/src/lib.rs:
crates/oskernel/src/guestas.rs:
crates/oskernel/src/guestos.rs:
crates/oskernel/src/image.rs:
crates/oskernel/src/smaps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
