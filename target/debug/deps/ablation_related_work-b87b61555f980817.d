/root/repo/target/debug/deps/ablation_related_work-b87b61555f980817.d: crates/bench/src/bin/ablation_related_work.rs Cargo.toml

/root/repo/target/debug/deps/libablation_related_work-b87b61555f980817.rmeta: crates/bench/src/bin/ablation_related_work.rs Cargo.toml

crates/bench/src/bin/ablation_related_work.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
