/root/repo/target/debug/deps/tps_java_repro-2f2ddb39c4b8def2.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/tps_java_repro-2f2ddb39c4b8def2: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
