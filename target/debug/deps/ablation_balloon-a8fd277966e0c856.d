/root/repo/target/debug/deps/ablation_balloon-a8fd277966e0c856.d: crates/bench/src/bin/ablation_balloon.rs

/root/repo/target/debug/deps/ablation_balloon-a8fd277966e0c856: crates/bench/src/bin/ablation_balloon.rs

crates/bench/src/bin/ablation_balloon.rs:
