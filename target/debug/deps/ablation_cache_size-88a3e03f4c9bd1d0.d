/root/repo/target/debug/deps/ablation_cache_size-88a3e03f4c9bd1d0.d: crates/bench/src/bin/ablation_cache_size.rs

/root/repo/target/debug/deps/ablation_cache_size-88a3e03f4c9bd1d0: crates/bench/src/bin/ablation_cache_size.rs

crates/bench/src/bin/ablation_cache_size.rs:
