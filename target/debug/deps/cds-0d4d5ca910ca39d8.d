/root/repo/target/debug/deps/cds-0d4d5ca910ca39d8.d: crates/cds/src/lib.rs crates/cds/src/cache.rs crates/cds/src/file.rs

/root/repo/target/debug/deps/cds-0d4d5ca910ca39d8: crates/cds/src/lib.rs crates/cds/src/cache.rs crates/cds/src/file.rs

crates/cds/src/lib.rs:
crates/cds/src/cache.rs:
crates/cds/src/file.rs:
