/root/repo/target/debug/deps/ablation_related_work-b7a790f02d16b2e7.d: crates/bench/src/bin/ablation_related_work.rs

/root/repo/target/debug/deps/ablation_related_work-b7a790f02d16b2e7: crates/bench/src/bin/ablation_related_work.rs

crates/bench/src/bin/ablation_related_work.rs:
