/root/repo/target/debug/deps/ablation_scan_rate-10466bb5c2617656.d: crates/bench/src/bin/ablation_scan_rate.rs

/root/repo/target/debug/deps/ablation_scan_rate-10466bb5c2617656: crates/bench/src/bin/ablation_scan_rate.rs

crates/bench/src/bin/ablation_scan_rate.rs:
