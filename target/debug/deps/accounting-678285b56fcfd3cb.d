/root/repo/target/debug/deps/accounting-678285b56fcfd3cb.d: tests/accounting.rs Cargo.toml

/root/repo/target/debug/deps/libaccounting-678285b56fcfd3cb.rmeta: tests/accounting.rs Cargo.toml

tests/accounting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
