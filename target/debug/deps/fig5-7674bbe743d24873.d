/root/repo/target/debug/deps/fig5-7674bbe743d24873.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-7674bbe743d24873: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
