/root/repo/target/debug/deps/proptest_file-2bbc4a58d5040784.d: crates/cds/tests/proptest_file.rs

/root/repo/target/debug/deps/proptest_file-2bbc4a58d5040784: crates/cds/tests/proptest_file.rs

crates/cds/tests/proptest_file.rs:
