/root/repo/target/debug/deps/fig8-344ac94884e20e90.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-344ac94884e20e90: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
