/root/repo/target/debug/deps/bench-7574b63c285cbfef.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-7574b63c285cbfef.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
