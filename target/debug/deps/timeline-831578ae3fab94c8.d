/root/repo/target/debug/deps/timeline-831578ae3fab94c8.d: crates/bench/src/bin/timeline.rs

/root/repo/target/debug/deps/timeline-831578ae3fab94c8: crates/bench/src/bin/timeline.rs

crates/bench/src/bin/timeline.rs:
