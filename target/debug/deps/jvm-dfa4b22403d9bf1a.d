/root/repo/target/debug/deps/jvm-dfa4b22403d9bf1a.d: crates/jvm/src/lib.rs crates/jvm/src/category.rs crates/jvm/src/classes.rs crates/jvm/src/classloader.rs crates/jvm/src/codearea.rs crates/jvm/src/fill.rs crates/jvm/src/heap.rs crates/jvm/src/jit.rs crates/jvm/src/profile.rs crates/jvm/src/stack.rs crates/jvm/src/vm.rs crates/jvm/src/workarea.rs

/root/repo/target/debug/deps/jvm-dfa4b22403d9bf1a: crates/jvm/src/lib.rs crates/jvm/src/category.rs crates/jvm/src/classes.rs crates/jvm/src/classloader.rs crates/jvm/src/codearea.rs crates/jvm/src/fill.rs crates/jvm/src/heap.rs crates/jvm/src/jit.rs crates/jvm/src/profile.rs crates/jvm/src/stack.rs crates/jvm/src/vm.rs crates/jvm/src/workarea.rs

crates/jvm/src/lib.rs:
crates/jvm/src/category.rs:
crates/jvm/src/classes.rs:
crates/jvm/src/classloader.rs:
crates/jvm/src/codearea.rs:
crates/jvm/src/fill.rs:
crates/jvm/src/heap.rs:
crates/jvm/src/jit.rs:
crates/jvm/src/profile.rs:
crates/jvm/src/stack.rs:
crates/jvm/src/vm.rs:
crates/jvm/src/workarea.rs:
