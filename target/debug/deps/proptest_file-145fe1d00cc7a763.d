/root/repo/target/debug/deps/proptest_file-145fe1d00cc7a763.d: crates/cds/tests/proptest_file.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_file-145fe1d00cc7a763.rmeta: crates/cds/tests/proptest_file.rs Cargo.toml

crates/cds/tests/proptest_file.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
