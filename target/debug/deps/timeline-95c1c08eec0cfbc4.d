/root/repo/target/debug/deps/timeline-95c1c08eec0cfbc4.d: crates/bench/src/bin/timeline.rs

/root/repo/target/debug/deps/timeline-95c1c08eec0cfbc4: crates/bench/src/bin/timeline.rs

crates/bench/src/bin/timeline.rs:
