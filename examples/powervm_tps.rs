//! The PowerVM side of the paper (§V.B, Fig. 6): the technique needs no
//! Linux/KVM specifics — any hypervisor with Transparent Page Sharing
//! benefits, here demonstrated on the system-VM (LPAR) host model with
//! run-to-convergence deduplication.
//!
//! ```text
//! cargo run --release --example powervm_tps [--scale N]
//! ```

use tpslab::PowerVmExperiment;

fn main() {
    let scale = parse_scale().unwrap_or(16.0);
    let mut exp = PowerVmExperiment::paper(scale);
    exp.startup_seconds = 240;
    println!(
        "PowerVM: {} LPARs x {:.0} MiB, WAS+DayTrader (scale 1/{scale})\n",
        exp.lpars,
        exp.lpar_mem_mib * scale
    );

    let without = exp.run(false);
    let with = exp.run(true);
    println!(
        "{:<16} {:>14} {:>14} {:>12}",
        "", "before (MiB)", "after (MiB)", "saved (MiB)"
    );
    for (name, fig) in [("not preloaded", without), ("preloaded", with)] {
        println!(
            "{:<16} {:>14.1} {:>14.1} {:>12.1}",
            name,
            fig.before_mib * scale,
            fig.after_mib * scale,
            fig.saving_mib() * scale,
        );
    }
    println!(
        "\npreloading increased PowerVM's page sharing by {:.1} MiB (paper: 181.0 MiB)",
        (with.saving_mib() - without.saving_mib()) * scale
    );
}

fn parse_scale() -> Option<f64> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--scale" {
            return args.next()?.parse().ok();
        }
    }
    None
}
