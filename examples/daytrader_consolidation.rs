//! The paper's motivating scenario: how many DayTrader guests fit on one
//! 6 GB host before throughput collapses — and how class preloading buys
//! one more VM (§V.C, Fig. 7).
//!
//! ```text
//! cargo run --release --example daytrader_consolidation [--scale N]
//! ```
//!
//! Runs at 1/16 scale by default so it finishes in seconds; pass
//! `--scale 1` for the paper-scale sweep.

use tpslab::{Experiment, ExperimentConfig, KsmSchedule};

fn main() {
    let scale = parse_scale().unwrap_or(16.0);
    let minutes = 5.0;
    println!("consolidation sweep at scale 1/{scale} ({minutes} simulated minutes per point)\n");
    println!(
        "{:>4} {:>22} {:>22}",
        "VMs", "default (req/s)", "preloaded (req/s)"
    );
    let seconds = (minutes * 60.0) as u64;
    for n in 4..=9 {
        let cfg = ExperimentConfig::paper_overcommit_daytrader(n, scale)
            .with_duration_seconds(seconds)
            .with_ksm(KsmSchedule::compressed(scale, seconds));
        let default = Experiment::run(&cfg).unwrap();
        let preload = Experiment::run(&cfg.clone().with_class_sharing()).unwrap();
        let marker = |slowdown: f64| if slowdown < 0.5 { " <- collapsed" } else { "" };
        println!(
            "{:>4} {:>18.1}{:<4} {:>18.1}{:<4}",
            n,
            default.total_throughput(),
            marker(default.slowdown),
            preload.total_throughput(),
            marker(preload.slowdown),
        );
    }
    println!("\nthe default configuration hits the memory wall one VM earlier than preloading.");
}

fn parse_scale() -> Option<f64> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--scale" {
            return args.next()?.parse().ok();
        }
    }
    None
}
