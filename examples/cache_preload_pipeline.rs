//! A tour of the class-preloading pipeline using the low-level APIs —
//! the §IV.C deployment story, step by step:
//!
//! 1. run the middleware once to populate a shared class cache,
//! 2. serialise the cache to a file and copy it to every guest VM
//!    (here: bytes → decode, as a disk-image copy would),
//! 3. map it in each guest's JVM,
//! 4. let KSM merge the byte-identical cache pages across VMs.
//!
//! ```text
//! cargo run --release --example cache_preload_pipeline
//! ```

use mem::Tick;
use tpslab::cds::{CacheBuilder, SharedClassCache};
use tpslab::hypervisor::{HostConfig, KvmHost};
use tpslab::jvm::{AppProfile, ClassSet, JavaVm, JvmConfig};
use tpslab::ksm::{KsmParams, KsmScanner};
use tpslab::oskernel::OsImage;

fn main() {
    let profile = AppProfile::tiny_test();

    // Step 1: "run the middleware once". The canonical class-load order
    // fills the cache with every cache-eligible class's read-only half.
    let classes = ClassSet::for_profile(&profile);
    let mut builder = CacheBuilder::new("webapp", 4.0);
    for class in classes.cacheable() {
        builder.add(class.token, class.ro_bytes);
    }
    let cache = builder.finish();
    println!(
        "populated cache '{}': {} classes, {:.2} MiB ({:.0} % of capacity)",
        cache.name(),
        cache.class_count(),
        cache.used_bytes() as f64 / (1024.0 * 1024.0),
        100.0 * cache.utilization(),
    );

    // Step 2: the cache file travels into each guest's disk image.
    let file_bytes = cache.to_bytes();
    println!("cache file: {} bytes", file_bytes.len());

    // Step 3: boot two guests and launch a JVM in each, both mapping
    // their own copy of the cache file.
    let mut host = KvmHost::new(HostConfig::paper_intel().scaled(16.0));
    let mut javas = Vec::new();
    for i in 0..2u64 {
        let g = host.create_guest(
            format!("vm{}", i + 1),
            96.0,
            &OsImage::tiny_test(),
            i + 1,
            Tick::ZERO,
        );
        let copy = SharedClassCache::from_bytes(&file_bytes).expect("cache copy decodes");
        let cfg = JvmConfig::new(6, 1000 + i).with_shared_cache(copy);
        let (mm, guest) = host.mm_and_guest_mut(g);
        javas.push(JavaVm::launch(
            mm,
            &mut guest.os,
            cfg,
            profile.clone(),
            Tick::ZERO,
        ));
    }

    // Step 4: run the system with the KSM scanner watching.
    let mut scanner = KsmScanner::new(KsmParams::new(5_000, 100));
    for t in 1..1200u64 {
        for (i, java) in javas.iter_mut().enumerate() {
            let (mm, guest) = host.mm_and_guest_mut(i);
            java.tick(mm, &mut guest.os, Tick(t));
        }
        scanner.run(host.mm_mut(), Tick(t));
    }
    scanner.recount(host.mm());

    println!(
        "after the run: KSM merged {} duplicate pages into {} stable frames",
        scanner.stats().pages_sharing,
        scanner.stats().pages_shared,
    );
    for (i, java) in javas.iter().enumerate() {
        println!(
            "vm{}: {} of {} classes served from the shared cache",
            i + 1,
            java.classes_from_cache(),
            java.loader().class_count(),
        );
    }
}
