//! Quickstart: run a miniature version of the paper's headline
//! experiment and print what Transparent Page Sharing achieved with and
//! without class preloading.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tpslab::{Experiment, ExperimentConfig};

fn main() {
    // Three small guest VMs, each running the same Java workload.
    let baseline = ExperimentConfig::tiny_test(3, false).with_duration_seconds(120);
    let preloaded = baseline.clone().with_class_sharing();

    println!("simulating 3 guests, baseline (no class sharing)…");
    let base_report = Experiment::run(&baseline).unwrap();
    println!("simulating 3 guests, shared class cache copied to all…");
    let cds_report = Experiment::run(&preloaded).unwrap();

    for (name, report) in [("baseline", &base_report), ("preloaded", &cds_report)] {
        println!("\n== {name} ==");
        println!(
            "host memory in use: {:.1} MiB | TPS saving: {:.1} MiB | KSM stable pages: {}",
            report.breakdown.total_owned_mib,
            report.total_tps_saving_mib(),
            report.ksm.pages_shared,
        );
        for java in &report.breakdown.javas {
            println!("  {}", tpslab::analysis::summarize_java(java));
        }
    }

    let delta = cds_report.mean_nonprimary_java_saving_mib()
        - base_report.mean_nonprimary_java_saving_mib();
    println!(
        "\nclass preloading increased each non-primary JVM's sharing by {delta:.1} MiB \
         ({:.0} % of its class metadata eliminated)",
        100.0 * cds_report.mean_nonprimary_class_saving_fraction()
    );
}
